"""Intraprocedural control-flow graphs and dominators.

WAL01's commit-point typestate check is phrased over dominators: *every
committed-state mutation must be dominated by a WAL event on all paths
from function entry*.  This module builds the statement-level CFG that
question is asked of.

Blocks hold statement lists; compound statements (``if``/``while``/
``for``/``with``/``match``) are appended to the block where their
*header* expressions evaluate, and their bodies continue in successor
blocks — so a scan of one statement must use :func:`header_exprs`, which
yields only the expressions evaluated at that program point (never the
nested body, and never nested ``def``/``class``/``lambda`` bodies).

Approximations (documented in docs/STATIC_ANALYSIS.md): a ``try`` body
may raise at any internal block boundary (every body block edges to
every handler), ``with`` exception paths are ignored, and uncaught
exceptions propagate via the function exit only from ``return``/
``raise`` sites.  These make the dominator answer conservative for the
commit-ordering property on the code shapes durability/ actually uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass
class Block:
    index: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: Set[int] = field(default_factory=set)


@dataclass
class CFG:
    blocks: List[Block]
    entry: int
    exit: int
    #: id(stmt) -> (block index, position within block)
    stmt_at: Dict[int, Tuple[int, int]]

    def predecessors(self) -> List[List[int]]:
        preds: List[List[int]] = [[] for _ in self.blocks]
        for block in self.blocks:
            for succ in block.succs:
                preds[succ].append(block.index)
        return preds


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self._new()
        self.exit = self._new()

    def _new(self) -> int:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].succs.add(dst)

    def _append(self, cur: Optional[int], stmt: ast.stmt) -> int:
        if cur is None:
            cur = self._new()  # dead code after return/raise/break
        self.blocks[cur].stmts.append(stmt)
        return cur

    def process(
        self,
        body: List[ast.stmt],
        cur: Optional[int],
        loops: List[Tuple[int, int]],
    ) -> Optional[int]:
        for stmt in body:
            if isinstance(stmt, ast.If):
                cur = self._append(cur, stmt)
                then = self._new()
                self._edge(cur, then)
                t_end = self.process(stmt.body, then, loops)
                ends = [t_end]
                if stmt.orelse:
                    els = self._new()
                    self._edge(cur, els)
                    ends.append(self.process(stmt.orelse, els, loops))
                else:
                    ends.append(cur)  # false branch falls through
                live = [e for e in ends if e is not None]
                if not live:
                    cur = None
                    continue
                join = self._new()
                for end in live:
                    self._edge(end, join)
                cur = join
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                cur = self._append(cur, stmt)
                header = self._new()
                self._edge(cur, header)
                after = self._new()
                body_blk = self._new()
                self._edge(header, body_blk)
                loops.append((header, after))
                b_end = self.process(stmt.body, body_blk, loops)
                loops.pop()
                if b_end is not None:
                    self._edge(b_end, header)
                if stmt.orelse:
                    els = self._new()
                    self._edge(header, els)
                    e_end = self.process(stmt.orelse, els, loops)
                    if e_end is not None:
                        self._edge(e_end, after)
                else:
                    self._edge(header, after)
                cur = after
            elif isinstance(stmt, ast.Try) or (
                hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
            ):
                cur = self._append(cur, stmt)
                first_body = len(self.blocks)
                body_blk = self._new()
                self._edge(cur, body_blk)
                b_end = self.process(stmt.body, body_blk, loops)
                last_body = len(self.blocks)
                if b_end is not None and stmt.orelse:
                    b_end = self.process(stmt.orelse, b_end, loops)
                handler_ends: List[Optional[int]] = []
                for handler in stmt.handlers:
                    h_blk = self._new()
                    # any body block may raise into any handler
                    for idx in range(first_body, last_body):
                        self._edge(idx, h_blk)
                    handler_ends.append(
                        self.process(handler.body, h_blk, loops)
                    )
                live = [e for e in [b_end] + handler_ends if e is not None]
                if stmt.finalbody:
                    fin = self._new()
                    for end in live:
                        self._edge(end, fin)
                    f_end = self.process(stmt.finalbody, fin, loops)
                    live = [f_end] if f_end is not None else []
                if not live:
                    cur = None
                    continue
                after = self._new()
                for end in live:
                    self._edge(end, after)
                cur = after
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                cur = self._append(cur, stmt)
                cur = self.process(stmt.body, cur, loops)
            elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
                cur = self._append(cur, stmt)
                ends: List[Optional[int]] = [cur]  # no case may match
                for case in stmt.cases:
                    c_blk = self._new()
                    self._edge(cur, c_blk)
                    ends.append(self.process(case.body, c_blk, loops))
                live = [e for e in ends if e is not None]
                join = self._new()
                for end in live:
                    self._edge(end, join)
                cur = join
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                cur = self._append(cur, stmt)
                self._edge(cur, self.exit)
                cur = None
            elif isinstance(stmt, ast.Break):
                cur = self._append(cur, stmt)
                if loops:
                    self._edge(cur, loops[-1][1])
                cur = None
            elif isinstance(stmt, ast.Continue):
                cur = self._append(cur, stmt)
                if loops:
                    self._edge(cur, loops[-1][0])
                cur = None
            else:
                cur = self._append(cur, stmt)
        return cur


def build_cfg(func: ast.AST) -> CFG:
    """CFG of one function body (``FunctionDef``/``AsyncFunctionDef``)."""
    builder = _Builder()
    end = builder.process(list(getattr(func, "body", [])), builder.entry, [])
    if end is not None:
        builder._edge(end, builder.exit)
    stmt_at: Dict[int, Tuple[int, int]] = {}
    for block in builder.blocks:
        for pos, stmt in enumerate(block.stmts):
            stmt_at.setdefault(id(stmt), (block.index, pos))
    return CFG(
        blocks=builder.blocks,
        entry=builder.entry,
        exit=builder.exit,
        stmt_at=stmt_at,
    )


def dominators(cfg: CFG) -> List[Set[int]]:
    """Per-block dominator sets (iterative dataflow, to fixpoint)."""
    n = len(cfg.blocks)
    preds = cfg.predecessors()
    full = set(range(n))
    dom: List[Set[int]] = [set(full) for _ in range(n)]
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for b in range(n):
            if b == cfg.entry:
                continue
            if preds[b]:
                new = set(full)
                for p in preds[b]:
                    new &= dom[p]
            else:
                new = set(full)  # unreachable: dominated by everything
            new.add(b)
            if new != dom[b]:
                dom[b] = new
                changed = True
    return dom


def header_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """AST nodes evaluated *at* ``stmt``'s program point.

    For compound statements this is the header only (test / iter /
    context managers / match subject), never the nested body — bodies
    live in their own CFG blocks.  Nested ``def``/``class`` bodies are
    never entered (they execute when called, not here).
    """
    if isinstance(stmt, ast.If):
        roots: List[ast.AST] = [stmt.test]
    elif isinstance(stmt, ast.While):
        roots = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        roots = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        roots = []
        for item in stmt.items:
            roots.append(item.context_expr)
            if item.optional_vars is not None:
                roots.append(item.optional_vars)
    elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        roots = [stmt.subject]
    elif isinstance(stmt, ast.Try) or (
        hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
    ):
        roots = []
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        roots = list(stmt.decorator_list)
    else:
        roots = [stmt]
    for root in roots:
        yield from walk_shallow(root)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                 ast.Lambda),
            ):
                continue
            stack.append(child)
