"""Content-hash incremental cache for reprolint runs.

The cache is a single JSON file (default ``.reprolint-cache.json`` next
to the repo's pyproject) with three layers of keying:

* ``local_key`` — engine version + rule set + config + schema-lock
  hash.  A mismatch drops every cached verdict.
* per-file ``sha`` — sha256 of the file bytes.  A match lets the local
  (per-file) diagnostics be replayed without re-running rules.
* ``project_signature`` — hash of the config key plus *every* file's
  ``(relpath, sha)``.  A match means nothing changed anywhere, so the
  warm path replays both local and interprocedural diagnostics without
  parsing a single file — this is what keeps ``repro lint`` warm runs
  to hashing cost only.

Diagnostics are stored path-relative so the cache survives a checkout
moving; absolute paths are re-derived from the current scan.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reprolint.diagnostics import Diagnostic

CACHE_FORMAT = 1


def load(path: Optional[str]) -> Optional[Dict[str, object]]:
    """Read a cache DB; any corruption or version skew reads as a miss."""
    if not path:
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            db = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(db, dict) or db.get("format") != CACHE_FORMAT:
        return None
    return db


def _pack(diag: Diagnostic) -> List[object]:
    return [diag.line, diag.col, diag.code, diag.message]


def _unpack(path: str, row: Sequence[object]) -> Diagnostic:
    line, col, code, message = row
    return Diagnostic(
        path=path, line=int(line), col=int(col),  # type: ignore[arg-type]
        code=str(code), message=str(message),
    )


def report_from_entry(path: str, entry: Dict[str, object]):
    """Rebuild one file's local :class:`FileReport` from its cache row."""
    from repro.analysis.reprolint.engine import FileReport

    report = FileReport(path=path)
    error = entry.get("parse_error")
    if error is not None:
        report.parse_error = str(error)
    for row in entry.get("diags", ()):  # type: ignore[union-attr]
        report.diagnostics.append(_unpack(path, row))
    return report


def reports_from_cache(db: Dict[str, object], entries) -> List[object]:
    """Rebuild the full report list on a whole-project cache hit."""
    files: Dict[str, Dict[str, object]] = db.get("files", {})  # type: ignore[assignment]
    project_rows: Dict[str, List[Sequence[object]]] = {}
    for row in db.get("project_diags", ()):  # type: ignore[union-attr]
        rel = str(row[0])
        project_rows.setdefault(rel, []).append(row[1:])
    reports = []
    for ent in entries:
        rel = str(ent["rel"])
        path = str(ent["path"])
        report = report_from_entry(path, files.get(rel, {}))
        for row in project_rows.get(rel, ()):
            report.diagnostics.append(_unpack(path, row))
        report.diagnostics.sort()
        reports.append(report)
    return reports


def save(
    path: str,
    local_key: str,
    project_signature: str,
    entries,
    reports_by_rel,
    local_diags: Dict[str, List[Diagnostic]],
    project_diags: List[Tuple[str, Diagnostic]],
) -> None:
    """Write the cache DB atomically (tmp file + rename)."""
    files: Dict[str, Dict[str, object]] = {}
    for ent in entries:
        rel = str(ent["rel"])
        report = reports_by_rel.get(rel)
        files[rel] = {
            "sha": ent["sha"],
            "parse_error": getattr(report, "parse_error", None),
            "diags": [_pack(d) for d in local_diags.get(rel, ())],
        }
    db = {
        "format": CACHE_FORMAT,
        "local_key": local_key,
        "project_signature": project_signature,
        "files": files,
        "project_diags": [
            [rel] + _pack(diag) for rel, diag in project_diags
        ],
    }
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd, tmp = tempfile.mkstemp(
            prefix=".reprolint-cache.", suffix=".tmp", dir=directory
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(db, handle)
        os.replace(tmp, path)
    except OSError:
        pass  # caching is best-effort; a failed write is just a cold run
