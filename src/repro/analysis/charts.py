"""ASCII bar charts for terminal review of the reproduced figures.

The paper's Figs. 7–12 are grouped bar charts; without a plotting
dependency, a log-scaled horizontal bar chart in text is the honest way
to *see* a 130× spread in a terminal or a CI log:

    ART      104.34 ms  |########################################
    SMART     27.66 ms  |############################
    DCART      1.31 ms  |#

``bar_chart`` renders one series; ``speedup_chart`` renders a results
matrix the way Fig. 9 is read (time per engine, one block per workload).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

DEFAULT_WIDTH = 48


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = DEFAULT_WIDTH,
    log_scale: bool = False,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bars, one line per (label, value)."""
    if not items:
        raise SimulationError("cannot chart an empty series")
    if width <= 0:
        raise SimulationError(f"width must be positive: {width}")
    values = [value for _, value in items]
    if any(v < 0 for v in values):
        raise SimulationError("bar_chart values must be >= 0")

    if log_scale:
        floor = min((v for v in values if v > 0), default=1.0)
        def scale(v: float) -> float:
            if v <= 0:
                return 0.0
            return math.log10(v / floor) + 1.0
    else:
        def scale(v: float) -> float:
            return v

    top = max(scale(v) for v in values) or 1.0
    label_width = max(len(label) for label, _ in items)
    value_width = max(len(f"{v:,.2f}") for v in values)

    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1 if value > 0 else 0, round(width * scale(value) / top))
        lines.append(
            f"{label:<{label_width}}  {value:>{value_width},.2f} {unit:<4s} |{bar}"
        )
    return "\n".join(lines)


def speedup_chart(
    matrix: Dict[str, Dict[str, "object"]],
    metric: str = "elapsed_seconds",
    scale: float = 1e3,
    unit: str = "ms",
    engine_order: Optional[Sequence[str]] = None,
    width: int = DEFAULT_WIDTH,
) -> str:
    """One log-scale block per workload, engines as bars (Fig. 9 style)."""
    if not matrix:
        raise SimulationError("cannot chart an empty matrix")
    blocks: List[str] = []
    for workload, per_engine in matrix.items():
        names = list(engine_order) if engine_order else sorted(per_engine)
        items = [
            (name, getattr(per_engine[name], metric) * scale)
            for name in names
            if name in per_engine
        ]
        blocks.append(
            bar_chart(
                items,
                width=width,
                log_scale=True,
                unit=unit,
                title=f"{workload} ({metric})",
            )
        )
    return "\n\n".join(blocks)
