"""Result-drift detection between two experiment runs.

Cost-model recalibration is how this reproduction is tuned, and its
danger is silent regression: a constant nudged to fix one figure shifts
three others.  ``compare_matrices(before, after)`` diffs two saved
matrices metric-by-metric and reports every relative change beyond a
tolerance, so a calibration change ships with a machine-checked list of
what it moved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.engines.base import RunResult
from repro.errors import SimulationError

#: Metrics compared, with per-metric relative tolerance.
WATCHED_METRICS = {
    "elapsed_seconds": 0.05,
    "energy_joules": 0.05,
    "partial_key_matches": 0.01,
    "lock_contentions": 0.01,
    "nodes_visited": 0.01,
    "bytes_fetched": 0.01,
}


@dataclass
class RegressionFinding:
    """One metric that moved beyond tolerance."""

    workload: str
    engine: str
    metric: str
    before: float
    after: float

    @property
    def relative_change(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before

    def __str__(self) -> str:
        return (
            f"{self.workload}/{self.engine}.{self.metric}: "
            f"{self.before:g} -> {self.after:g} "
            f"({100 * self.relative_change:+.1f} %)"
        )


def compare_matrices(
    before: Dict[str, Dict[str, RunResult]],
    after: Dict[str, Dict[str, RunResult]],
    tolerances: Dict[str, float] = None,
) -> List[RegressionFinding]:
    """Diff two matrices; returns findings sorted by |relative change|.

    Raises when the matrices do not cover the same engine x workload
    grid — a silently dropped configuration is itself a regression.
    """
    if tolerances is None:
        tolerances = WATCHED_METRICS
    if set(before) != set(after):
        raise SimulationError(
            f"workload sets differ: {sorted(before)} vs {sorted(after)}"
        )
    findings: List[RegressionFinding] = []
    for workload in before:
        if set(before[workload]) != set(after[workload]):
            raise SimulationError(
                f"engine sets differ on {workload}: "
                f"{sorted(before[workload])} vs {sorted(after[workload])}"
            )
        for engine, old in before[workload].items():
            new = after[workload][engine]
            for metric, tolerance in tolerances.items():
                value_before = float(getattr(old, metric))
                value_after = float(getattr(new, metric))
                if value_before == 0 and value_after == 0:
                    continue
                base = abs(value_before) if value_before else 1.0
                if abs(value_after - value_before) / base > tolerance:
                    findings.append(
                        RegressionFinding(
                            workload, engine, metric, value_before, value_after
                        )
                    )
    findings.sort(key=lambda f: -abs(f.relative_change))
    return findings
