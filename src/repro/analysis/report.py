"""Markdown reports from results matrices.

``markdown_report(matrix)`` renders what a paper's evaluation section
would: one table per workload with every engine's headline metrics, and
a closing band summary in the paper's "A×–B×" phrasing — ready to paste
into docs/PAPER_COMPARISON.md or a PR description.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engines.base import RunResult
from repro.errors import SimulationError
from repro.harness.comparison import band, energy_savings, speedups

HEADLINE_METRICS = (
    ("time (ms)", lambda r: f"{r.elapsed_seconds * 1e3:.3f}"),
    ("Mops/s", lambda r: f"{r.throughput_mops:.2f}"),
    ("sync %", lambda r: f"{100 * r.sync_share:.1f}"),
    ("contentions", lambda r: str(r.lock_contentions)),
    ("matches", lambda r: str(r.partial_key_matches)),
    ("energy (J)", lambda r: f"{r.energy_joules:.4f}"),
    ("p99 (us)", lambda r: f"{r.p99_latency_us:.1f}"),
)


def _markdown_table(headers: Sequence[str], rows: List[List[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines)


def markdown_report(
    matrix: Dict[str, Dict[str, RunResult]],
    title: str = "DCART reproduction report",
    reference: str = "DCART",
    engine_order: Optional[Sequence[str]] = None,
) -> str:
    """Render a full Markdown report for a run_matrix result."""
    if not matrix:
        raise SimulationError("cannot report on an empty matrix")
    sections = [f"# {title}", ""]

    for workload, per_engine in matrix.items():
        names = list(engine_order) if engine_order else sorted(per_engine)
        names = [n for n in names if n in per_engine]
        sections.append(f"## {workload}")
        sections.append("")
        rows = []
        for name in names:
            result = per_engine[name]
            rows.append([name] + [fmt(result) for _, fmt in HEADLINE_METRICS])
        sections.append(
            _markdown_table(["engine"] + [m for m, _ in HEADLINE_METRICS], rows)
        )
        sections.append("")

    if all(reference in per_engine for per_engine in matrix.values()):
        sections.append("## Bands (vs. " + reference + ")")
        sections.append("")
        baselines = sorted(
            name
            for per_engine in matrix.values()
            for name in per_engine
            if name != reference
        )
        rows = []
        for name in dict.fromkeys(baselines):
            spd = [
                speedups(per_engine, reference)[name]
                for per_engine in matrix.values()
                if name in per_engine
            ]
            sav = [
                energy_savings(per_engine, reference)[name]
                for per_engine in matrix.values()
                if name in per_engine
            ]
            lo_s, hi_s = band(spd)
            lo_e, hi_e = band(sav)
            rows.append(
                [
                    name,
                    f"{lo_s:.1f}x-{hi_s:.1f}x",
                    f"{lo_e:.1f}x-{hi_e:.1f}x",
                ]
            )
        sections.append(
            _markdown_table(["baseline", "speedup band", "energy band"], rows)
        )
        sections.append("")

    return "\n".join(sections)
