"""Post-processing of experiment results.

* :mod:`report`  — turn a results matrix into a Markdown report
  (per-workload tables + the band summary the paper quotes);
* :mod:`regress` — compare two saved matrices and flag metric drift,
  the guard rail for cost-model recalibration.
"""

from repro.analysis.charts import bar_chart, speedup_chart
from repro.analysis.export import csv_to_rows, experiment_to_csv
from repro.analysis.regress import RegressionFinding, compare_matrices
from repro.analysis.report import markdown_report

__all__ = [
    "RegressionFinding",
    "bar_chart",
    "compare_matrices",
    "csv_to_rows",
    "experiment_to_csv",
    "markdown_report",
    "speedup_chart",
]
