"""CSV export of experiment results.

Every :class:`~repro.harness.experiments.ExperimentResult` is a headers+
rows table; this module writes it as RFC-4180 CSV so the figures can be
re-plotted with any external tool (the repository itself stays free of
plotting dependencies).
"""

from __future__ import annotations

import csv
import io
from typing import IO, Union

from repro.errors import SimulationError


def experiment_to_csv(result, destination: Union[str, IO, None] = None) -> str:
    """Write an ExperimentResult as CSV; returns the CSV text.

    ``destination`` may be a path, a writable file object, or ``None``
    (string only).  A ``# experiment:`` comment line carries the title.
    """
    if not result.headers:
        raise SimulationError("experiment has no headers to export")
    buffer = io.StringIO()
    buffer.write(f"# experiment: {result.experiment}\n")
    if result.notes:
        buffer.write(f"# notes: {result.notes}\n")
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        if len(row) != len(result.headers):
            raise SimulationError(
                f"row width {len(row)} != header width {len(result.headers)}"
            )
        writer.writerow(row)
    text = buffer.getvalue()

    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(text)
    elif destination is not None:
        destination.write(text)
    return text


def csv_to_rows(text: str):
    """Parse CSV produced by :func:`experiment_to_csv` back into
    ``(headers, rows)`` with numeric cells restored."""
    lines = [line for line in text.splitlines() if not line.startswith("#")]
    reader = csv.reader(lines)
    try:
        headers = next(reader)
    except StopIteration:
        raise SimulationError("empty CSV")
    rows = []
    for raw in reader:
        row = []
        for cell in raw:
            try:
                row.append(int(cell))
            except ValueError:
                try:
                    row.append(float(cell))
                except ValueError:
                    row.append(cell)
        rows.append(row)
    return headers, rows
