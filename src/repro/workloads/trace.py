"""Workload persistence: save and reload generated workloads.

Large experiment grids want to generate each workload once and replay
it everywhere (and a reviewer wants to inspect the exact operation
stream a number came from).  The format is JSON-lines:

* line 1 — a header object (name, key family, seed, metadata);
* one line per loaded key (``{"load": "<hex>"}``);
* one line per operation (``{"id", "op", "key", "value"?, "scan"?}``).

Keys are hex-encoded so any byte string round-trips; values are
restricted to JSON scalars (which is all the generators produce).
"""

from __future__ import annotations

import json
from typing import IO, Union

from repro.errors import WorkloadError
from repro.workloads.ops import OpKind, Operation, OperationStream, Workload

FORMAT_VERSION = 1


def save_workload(workload: Workload, path_or_file: Union[str, IO]) -> None:
    """Write a workload as JSON-lines."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            save_workload(workload, handle)
        return
    out = path_or_file
    header = {
        "format": FORMAT_VERSION,
        "name": workload.name,
        "key_family": workload.key_family,
        "seed": workload.seed,
        "description": workload.description,
        "metadata": workload.metadata,
    }
    out.write(json.dumps(header) + "\n")
    for key in workload.loaded_keys:
        out.write(json.dumps({"load": key.hex()}) + "\n")
    for op in workload.operations:
        record = {"id": op.op_id, "op": op.kind.value, "key": op.key.hex()}
        if op.value is not None:
            record["value"] = op.value
        if op.scan_count:
            record["scan"] = op.scan_count
        out.write(json.dumps(record) + "\n")


def load_workload(path_or_file: Union[str, IO]) -> Workload:
    """Read a workload written by :func:`save_workload`."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            return load_workload(handle)
    lines = iter(path_or_file)
    try:
        header = json.loads(next(lines))
    except StopIteration:
        raise WorkloadError("empty workload file")
    if not isinstance(header, dict) or "name" not in header:
        raise WorkloadError("malformed workload header")
    if header.get("format") != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format: {header.get('format')!r}"
        )

    loaded_keys = []
    operations = []
    for line_number, line in enumerate(lines, start=2):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "load" in record:
            if operations:
                raise WorkloadError(
                    f"line {line_number}: load key after operations began"
                )
            loaded_keys.append(bytes.fromhex(record["load"]))
        else:
            try:
                kind = OpKind(record["op"])
            except (KeyError, ValueError):
                raise WorkloadError(f"line {line_number}: bad operation record")
            operations.append(
                Operation(
                    op_id=record["id"],
                    kind=kind,
                    key=bytes.fromhex(record["key"]),
                    value=record.get("value"),
                    scan_count=record.get("scan", 0),
                )
            )
    return Workload(
        name=header["name"],
        key_family=header.get("key_family", "unknown"),
        loaded_keys=loaded_keys,
        operations=OperationStream(operations),
        seed=header.get("seed", 0),
        description=header.get("description", ""),
        metadata=header.get("metadata", {}),
    )
