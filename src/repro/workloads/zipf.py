"""Bounded Zipfian sampling.

Real-world key-value traffic is skewed (paper Fig. 3: the hottest 8-bit
prefix of *IPGEO* draws >24 000 operations while most draw near zero, and
96.65 % of traversals touch 5 % of nodes).  We model that skew with the
standard bounded Zipf distribution over ranks ``1..n``:

    P(rank = k)  ∝  1 / k**theta

``theta = 0`` degenerates to uniform; YCSB's default hotspot skew is
``theta ≈ 0.99``; the concentrations in Fig. 3 correspond to ``theta``
between roughly 1.0 and 1.3 for the real-world workloads.

The sampler is deterministic for a given ``numpy`` generator and uses an
exact inverse-CDF (precomputed, O(log n) per draw via ``searchsorted``),
not the approximate rejection method, so small universes are sampled
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Draw ranks in ``[0, n)`` with Zipf(theta) probabilities."""

    def __init__(self, n: int, theta: float, rng: np.random.Generator):
        if n <= 0:
            raise WorkloadError(f"Zipf universe must be non-empty: n={n}")
        if theta < 0:
            raise WorkloadError(f"Zipf theta must be >= 0: {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """Return ``count`` ranks (0-based; rank 0 is the hottest)."""
        if count < 0:
            raise WorkloadError(f"sample count must be >= 0: {count}")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left")

    def probability(self, rank: int) -> float:
        """Exact probability of a 0-based rank."""
        if not 0 <= rank < self.n:
            raise WorkloadError(f"rank out of range: {rank}")
        low = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - low)

    def top_mass(self, fraction: float) -> float:
        """Probability mass carried by the hottest ``fraction`` of ranks.

        ``top_mass(0.05)`` answers the paper's Observation 2 question: how
        much of the traffic lands on 5 % of the universe.
        """
        if not 0 < fraction <= 1:
            raise WorkloadError(f"fraction must be in (0, 1]: {fraction}")
        cutoff = max(1, int(self.n * fraction))
        return float(self._cdf[cutoff - 1])
