"""Read/write operation mixes (paper Fig. 12(b)).

The paper's sensitivity study uses five mixes over *IPGEO*:

    A — 100 % read                 D — 25 % read, 75 % write
    B — 75 % read, 25 % write      E — 100 % write
    C — 50 % read, 50 % write      (C is the default everywhere else)

(These letters follow the paper's Fig. 12(b) definition, not the original
YCSB core-workload letters.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class OperationMix:
    """A read/write split; ratios must sum to 1."""

    name: str
    read_ratio: float
    write_ratio: float

    def __post_init__(self):
        total = self.read_ratio + self.write_ratio
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"mix {self.name!r} ratios sum to {total}, expected 1.0"
            )
        if self.read_ratio < 0 or self.write_ratio < 0:
            raise WorkloadError(f"mix {self.name!r} has a negative ratio")


MIXES = {
    "A": OperationMix("A", read_ratio=1.00, write_ratio=0.00),
    "B": OperationMix("B", read_ratio=0.75, write_ratio=0.25),
    "C": OperationMix("C", read_ratio=0.50, write_ratio=0.50),
    "D": OperationMix("D", read_ratio=0.25, write_ratio=0.75),
    "E": OperationMix("E", read_ratio=0.00, write_ratio=1.00),
}

DEFAULT_MIX = MIXES["C"]


def mix_for_write_ratio(write_ratio: float) -> OperationMix:
    """Build an ad-hoc mix for a sweep over write ratios (Fig. 2(e))."""
    if not 0 <= write_ratio <= 1:
        raise WorkloadError(f"write ratio must be in [0, 1]: {write_ratio}")
    return OperationMix(
        name=f"w{write_ratio:.2f}",
        read_ratio=1.0 - write_ratio,
        write_ratio=write_ratio,
    )
