"""Per-prefix operation histograms (paper Fig. 3).

Fig. 3 plots, for each real-world workload, how many operations target
keys led by each 8-bit prefix (0x00–0xFF).  The same figure grounds both
of the paper's observations:

* *temporal similarity* — a handful of prefixes draw an order of
  magnitude more operations than the rest (IPGEO peaks above 24 000 at
  prefix 0x67);
* *spatial similarity* — ">96.65 % of tree traversals access only 5 % of
  the nodes", summarised here by :func:`concentration`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.ops import Operation


class PrefixHistogram:
    """Counts of operations per 8-bit key prefix."""

    def __init__(self, counts: Sequence[int], byte_offset: int = 0):
        if len(counts) != 256:
            raise WorkloadError(f"prefix histogram needs 256 bins, got {len(counts)}")
        self.counts: List[int] = [int(c) for c in counts]
        self.byte_offset = byte_offset

    @classmethod
    def from_operations(
        cls, operations: Iterable[Operation], byte_offset: int = 0
    ) -> "PrefixHistogram":
        counts = [0] * 256
        for op in operations:
            if byte_offset < len(op.key):
                counts[op.key[byte_offset]] += 1
        return cls(counts, byte_offset)

    @classmethod
    def from_keys(
        cls, keys: Iterable[bytes], byte_offset: int = 0
    ) -> "PrefixHistogram":
        counts = [0] * 256
        for key in keys:
            if byte_offset < len(key):
                counts[key[byte_offset]] += 1
        return cls(counts, byte_offset)

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def hottest(self) -> Tuple[int, int]:
        """``(prefix, count)`` of the most-targeted prefix."""
        prefix = max(range(256), key=lambda p: self.counts[p])
        return prefix, self.counts[prefix]

    @property
    def nonzero_prefixes(self) -> int:
        return sum(1 for c in self.counts if c > 0)

    def share(self, prefix: int) -> float:
        """Fraction of all operations targeting ``prefix``."""
        if self.total == 0:
            return 0.0
        return self.counts[prefix] / self.total

    def top_share(self, n_prefixes: int) -> float:
        """Fraction of operations on the ``n_prefixes`` hottest prefixes."""
        if self.total == 0:
            return 0.0
        top = sorted(self.counts, reverse=True)[:n_prefixes]
        return sum(top) / self.total

    def skew_ratio(self) -> float:
        """Hottest-prefix count over the mean non-zero count.

        Fig. 3's visual signature: the peak towers over the typical bar.
        """
        nonzero = [c for c in self.counts if c > 0]
        if not nonzero:
            return 0.0
        return max(nonzero) / (sum(nonzero) / len(nonzero))

    def as_dict(self) -> Dict[int, int]:
        return {p: c for p, c in enumerate(self.counts) if c > 0}


def concentration(access_counts: Iterable[int], top_fraction: float) -> float:
    """Share of accesses landing on the hottest ``top_fraction`` of items.

    ``concentration(per_node_traversals, 0.05)`` reproduces the paper's
    Observation 2 statistic (>96.65 % on 5 % of nodes for real-world
    workloads).
    """
    if not 0 < top_fraction <= 1:
        raise WorkloadError(f"top_fraction must be in (0, 1]: {top_fraction}")
    counts = np.asarray(sorted(access_counts, reverse=True), dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    cutoff = max(1, int(len(counts) * top_fraction))
    return float(counts[:cutoff].sum() / total)
