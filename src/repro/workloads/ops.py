"""Operation and workload containers.

An *operation* is what the paper's engines process: read or write a
key-value item over the ART (§II-A).  Writes that address a key already in
the tree are value updates; writes that address a new key are structural
inserts — both are ``WRITE`` here, and the engines resolve which work they
imply, exactly as an upsert-style store would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.errors import WorkloadError


class OpKind(enum.Enum):
    """The operation kinds the paper evaluates."""

    READ = "read"
    WRITE = "write"
    DELETE = "delete"
    SCAN = "scan"

    @property
    def is_write(self) -> bool:
        return self in (OpKind.WRITE, OpKind.DELETE)


@dataclass(frozen=True, slots=True)
class Operation:
    """One key-value operation.

    ``value`` is the payload for writes; ``scan_count`` bounds a range
    scan.  ``op_id`` preserves arrival order, which the concurrency
    simulators use to form waves/batches.
    """

    op_id: int
    kind: OpKind
    key: bytes
    value: Optional[object] = None
    scan_count: int = 0

    @property
    def prefix_byte(self) -> int:
        """First key byte — what DCART's PCU buckets on by default."""
        return self.key[0]


class OperationStream:
    """An ordered sequence of operations with summary accessors.

    A list passed in is adopted without copying (a 1M-op workload should
    not exist twice in memory); the caller must not mutate it afterwards.
    Pass ``copy=True`` to force a private copy, e.g. when the list is
    reused as a scratch buffer.  Non-list sequences and iterators are
    always materialised into a fresh list.
    """

    def __init__(self, operations: Sequence[Operation], *, copy: bool = False):
        if isinstance(operations, list) and not copy:
            self._operations: List[Operation] = operations
        else:
            self._operations = list(operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index):
        return self._operations[index]

    @property
    def read_count(self) -> int:
        return sum(1 for op in self._operations if op.kind is OpKind.READ)

    @property
    def write_count(self) -> int:
        return sum(1 for op in self._operations if op.kind.is_write)

    @property
    def write_ratio(self) -> float:
        if not self._operations:
            return 0.0
        return self.write_count / len(self._operations)

    def distinct_keys(self) -> int:
        return len({op.key for op in self._operations})

    def batches(self, batch_size: int) -> Iterator[List[Operation]]:
        """Split into arrival-order batches (DCART's PCU/SOU overlap unit)."""
        if batch_size <= 0:
            raise WorkloadError(f"batch size must be positive: {batch_size}")
        for start in range(0, len(self._operations), batch_size):
            yield self._operations[start : start + batch_size]

    def head(self, count: int) -> "OperationStream":
        """The first ``count`` operations as a new stream."""
        return OperationStream(self._operations[:count])


@dataclass
class Workload:
    """A complete experiment input.

    ``loaded_keys`` are bulk-inserted before timing starts (the tree the
    operations run against); ``operations`` is the timed stream.  The paper
    loads each key set and then issues the read/write mix over it.
    """

    name: str
    key_family: str  # "ipv4" | "string" | "u64"
    loaded_keys: List[bytes]
    operations: OperationStream
    seed: int = 0
    description: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_keys(self) -> int:
        return len(self.loaded_keys)

    @property
    def n_ops(self) -> int:
        return len(self.operations)

    def summary(self) -> str:
        return (
            f"{self.name}: {self.n_keys} keys ({self.key_family}), "
            f"{self.n_ops} ops, write ratio "
            f"{self.operations.write_ratio:.2f}"
        )
