"""Synthetic equivalents of the paper's real-world key sets.

The paper uses three proprietary/large downloads we cannot ship:

* **IPGEO** — IP→country records from GeoLite2.  Real allocated IPv4
  space is very unevenly distributed over the first octet (RIR blocks),
  and lookup traffic concentrates further (Fig. 3 shows prefix ``0x67`` =
  103 drawing >24 000 operations).  We generate addresses whose first
  octet follows a Zipf-permuted distribution peaked at 0x67, with the
  remaining octets uniform, and country-code values.
* **DICT** — the *dwyl/english-words* list.  English words concentrate on
  few initial letters ('s', 'c', 'p', ...).  We generate pronounceable
  syllable words whose first letter follows measured English first-letter
  frequencies, so the encoded keys reproduce the skewed first-byte
  histogram of Fig. 3.
* **EA** — e-mail addresses.  Provider domains are Zipf-distributed
  (a handful of providers dominate); with the reversed-domain encoding of
  :func:`repro.art.keys.encode_email`, those providers become hot key
  prefixes.

Each generator is seeded and returns unique encoded keys.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.art.keys import encode_str
from repro.errors import WorkloadError
from repro.workloads.zipf import ZipfSampler

# The paper's Fig. 3 shows IPGEO traffic peaking at prefix 0x67 (=103,
# an APNIC block).  We permute octets so rank 0 of the Zipf lands there.
IPGEO_HOT_OCTET = 0x67
IPGEO_OCTET_SKEW = 1.1

# Approximate first-letter frequency of English headwords (percent),
# derived from standard dictionary statistics.
ENGLISH_FIRST_LETTER = {
    "a": 6.5, "b": 4.7, "c": 9.4, "d": 6.1, "e": 3.9, "f": 4.1, "g": 3.3,
    "h": 3.7, "i": 3.9, "j": 1.1, "k": 1.0, "l": 3.1, "m": 5.6, "n": 2.2,
    "o": 2.5, "p": 7.7, "q": 0.5, "r": 6.0, "s": 11.0, "t": 5.0, "u": 2.9,
    "v": 1.5, "w": 2.7, "x": 0.1, "y": 0.6, "z": 0.4,
}

VOWELS = "aeiou"
CONSONANTS = "bcdfghjklmnpqrstvwxyz"

EMAIL_PROVIDERS = [
    "gmail.com", "yahoo.com", "hotmail.com", "outlook.com", "aol.com",
    "icloud.com", "mail.ru", "qq.com", "163.com", "protonmail.com",
    "gmx.de", "web.de", "yandex.ru", "live.com", "msn.com",
    "comcast.net", "verizon.net", "att.net", "orange.fr", "free.fr",
]
EMAIL_PROVIDER_SKEW = 1.05


def ipgeo_keys(n_keys: int, rng: np.random.Generator) -> List[bytes]:
    """Unique IPv4 keys with a Zipf-skewed first octet peaked at 0x67."""
    _check(n_keys)
    if n_keys > 2**28:
        raise WorkloadError("IPGEO generator supports at most 2^28 keys")
    sampler = ZipfSampler(256, IPGEO_OCTET_SKEW, rng)
    # Rank 0 -> the hot octet; remaining ranks -> a seeded permutation.
    others = [o for o in range(256) if o != IPGEO_HOT_OCTET]
    rng.shuffle(others)
    octet_for_rank = [IPGEO_HOT_OCTET] + others

    seen = set()
    keys: List[bytes] = []
    while len(keys) < n_keys:
        need = n_keys - len(keys)
        firsts = sampler.sample(need)
        rest = rng.integers(0, 256, size=(need, 3))
        for rank, tail in zip(firsts.tolist(), rest.tolist()):
            address = bytes([octet_for_rank[rank]] + tail)
            if address not in seen:
                seen.add(address)
                keys.append(address)
    # Order keys by descending block popularity: request popularity in
    # real IP lookup streams correlates with block density (a hot /8
    # holds both more addresses and more traffic), and the workload
    # factory derives op popularity from this order — which is what
    # makes the per-prefix op histogram peak at the hot octet (Fig. 3).
    octet_count = [0] * 256
    for key in keys:
        octet_count[key[0]] += 1
    keys.sort(key=lambda k: -octet_count[k[0]])
    return keys


def ipgeo_values(keys: List[bytes], rng: np.random.Generator) -> List[str]:
    """Country codes for IPGEO keys (same first octet → same country,
    mimicking RIR block assignment)."""
    countries = [
        "CN", "US", "JP", "DE", "GB", "FR", "BR", "IN", "RU", "KR",
        "AU", "CA", "IT", "ES", "NL",
    ]
    by_octet = {
        octet: countries[int(c)]
        for octet, c in enumerate(rng.integers(0, len(countries), size=256))
    }
    return [by_octet[key[0]] for key in keys]


def dict_keys(n_keys: int, rng: np.random.Generator) -> List[bytes]:
    """Unique pronounceable pseudo-English words, NUL-terminated UTF-8."""
    _check(n_keys)
    letters = list(ENGLISH_FIRST_LETTER.keys())
    weights = np.array(list(ENGLISH_FIRST_LETTER.values()))
    weights = weights / weights.sum()

    seen = set()
    keys: List[bytes] = []
    while len(keys) < n_keys:
        first = letters[int(rng.choice(len(letters), p=weights))]
        word = first + _syllables(rng, int(rng.integers(1, 4)))
        if word not in seen:
            seen.add(word)
            keys.append(encode_str(word))
    return keys


def _syllables(rng: np.random.Generator, count: int) -> str:
    parts = []
    for _ in range(count):
        consonant = CONSONANTS[int(rng.integers(0, len(CONSONANTS)))]
        vowel = VOWELS[int(rng.integers(0, len(VOWELS)))]
        parts.append(consonant + vowel)
        if rng.random() < 0.3:
            parts.append(CONSONANTS[int(rng.integers(0, len(CONSONANTS)))])
    return "".join(parts)


def email_keys(n_keys: int, rng: np.random.Generator) -> List[bytes]:
    """Unique e-mail keys, encoded as the plain address string.

    The index is keyed by the address itself (``local@domain``), as a
    mail-system index would be: the 8-bit key prefix is the local part's
    first letter, which follows natural name-letter frequencies — a
    skewed-but-covering first-byte histogram like Fig. 3's EA panel.
    Providers are Zipf-distributed across the 20 most common domains.
    """
    _check(n_keys)
    sampler = ZipfSampler(len(EMAIL_PROVIDERS), EMAIL_PROVIDER_SKEW, rng)
    letters = list(ENGLISH_FIRST_LETTER.keys())
    weights = np.array(list(ENGLISH_FIRST_LETTER.values()))
    weights = weights / weights.sum()
    seen = set()
    keys: List[bytes] = []
    serial = 0
    while len(keys) < n_keys:
        provider = EMAIL_PROVIDERS[int(sampler.sample(1)[0])]
        first = letters[int(rng.choice(len(letters), p=weights))]
        local = first + _syllables(rng, int(rng.integers(1, 3)))
        if rng.random() < 0.4:
            local = f"{local}{serial % 1000}"
        serial += 1
        encoded = encode_str(f"{local}@{provider}")
        if encoded not in seen:
            seen.add(encoded)
            keys.append(encoded)
    return keys


def _check(n_keys: int) -> None:
    if n_keys <= 0:
        raise WorkloadError(f"n_keys must be positive: {n_keys}")
