"""The single entry point for building the paper's six workloads.

``make_workload(name, ...)`` produces a :class:`~repro.workloads.ops.Workload`:

1. generate the key universe for ``name`` (see :mod:`synthetic` /
   :mod:`realworld`);
2. mark the first ``load_fraction`` of keys as bulk-loaded (the tree the
   timed phase runs against) and keep the rest as an *insert reserve*;
3. generate ``n_ops`` operations: reads and value-updating writes sample
   loaded keys through a Zipf(theta) popularity ranking (a seeded
   permutation decouples popularity from key order), and a configurable
   share of writes are structural inserts drawn from the reserve.

Temporal similarity — the paper's Observation 1 — emerges from the Zipf
popularity; spatial similarity — Observation 2 — from popularity plus the
key sets' own prefix skew.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.workloads import realworld, synthetic
from repro.workloads.mixes import DEFAULT_MIX, OperationMix, mix_for_write_ratio
from repro.workloads.ops import OpKind, Operation, OperationStream, Workload

WORKLOAD_NAMES = ("IPGEO", "DICT", "EA", "DE", "RS", "RD")

# Default operation-popularity skew per workload.  Real-world request
# streams are strongly skewed (Fig. 3); the synthetic integer workloads
# are given the moderate skew of a YCSB-style generator.
# Calibrated so the measured ratio bands straddle the paper's reported
# bands (see docs/PAPER_COMPARISON.md); all within the plausible range of skewed
# key-value request streams (YCSB's default is 0.99, hot production
# streams reach 1.2+).
DEFAULT_OP_SKEW = {
    "IPGEO": 1.20,
    "DICT": 1.15,
    "EA": 1.15,
    "DE": 1.12,
    "RS": 1.15,
    "RD": 1.12,
}

KEY_FAMILY = {
    "IPGEO": "ipv4",
    "DICT": "string",
    "EA": "string",
    "DE": "u64",
    "RS": "u64",
    "RD": "u64",
}

DESCRIPTIONS = {
    "IPGEO": "IP->country records (GeoLite2 equivalent), skewed first octet",
    "DICT": "English-dictionary-like words, skewed first letter",
    "EA": "e-mail addresses, Zipf-distributed providers (domain-reversed)",
    "DE": "dense 8-byte integers, ascending load order",
    "RS": "random sparse 8-byte integers (uniform over 2^64)",
    "RD": "random dense 8-byte integers (dense range, random order)",
}


def make_workload(
    name: str,
    n_keys: int = 100_000,
    n_ops: Optional[int] = None,
    mix: Optional[OperationMix] = None,
    write_ratio: Optional[float] = None,
    seed: int = 1,
    op_skew: Optional[float] = None,
    load_fraction: float = 0.85,
    insert_share_of_writes: float = 0.3,
    scan_ratio: float = 0.0,
    scan_length: int = 50,
) -> Workload:
    """Build one of the paper's six workloads at any scale.

    ``mix`` and ``write_ratio`` are mutually exclusive ways to set the
    read/write split; the default is the paper's 50/50 (mix C).

    ``scan_ratio`` converts that fraction of the *read* operations into
    bounded range scans of up to ``scan_length`` pairs (an extension
    beyond the paper's point-op streams — §V motivates tree indexes with
    range queries, so the harness supports exercising them).
    """
    if name not in WORKLOAD_NAMES:
        raise WorkloadError(
            f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
        )
    if mix is not None and write_ratio is not None:
        raise WorkloadError("pass either mix or write_ratio, not both")
    if write_ratio is not None:
        mix = mix_for_write_ratio(write_ratio)
    if mix is None:
        mix = DEFAULT_MIX
    if n_ops is None:
        n_ops = 2 * n_keys
    if not 0 < load_fraction <= 1:
        raise WorkloadError(f"load_fraction must be in (0, 1]: {load_fraction}")
    if not 0 <= insert_share_of_writes <= 1:
        raise WorkloadError(
            f"insert_share_of_writes must be in [0, 1]: {insert_share_of_writes}"
        )

    rng = np.random.default_rng(seed)
    keys = _generate_keys(name, n_keys, rng)
    theta = DEFAULT_OP_SKEW[name] if op_skew is None else op_skew

    n_loaded = max(1, int(len(keys) * load_fraction))
    loaded = keys[:n_loaded]
    reserve = keys[n_loaded:]

    if not 0 <= scan_ratio <= 1:
        raise WorkloadError(f"scan_ratio must be in [0, 1]: {scan_ratio}")
    if scan_length <= 0:
        raise WorkloadError(f"scan_length must be positive: {scan_length}")

    operations = _generate_operations(
        loaded, reserve, n_ops, mix, theta, insert_share_of_writes, rng,
        scan_ratio, scan_length,
    )
    return Workload(
        name=name,
        key_family=KEY_FAMILY[name],
        loaded_keys=loaded,
        operations=operations,
        seed=seed,
        description=DESCRIPTIONS[name],
        metadata={
            "mix": mix.name,
            "op_skew": theta,
            "n_reserve": len(reserve),
            "requested_keys": n_keys,
        },
    )


def _generate_keys(name: str, n_keys: int, rng: np.random.Generator):
    if name == "IPGEO":
        return realworld.ipgeo_keys(n_keys, rng)
    if name == "DICT":
        return realworld.dict_keys(n_keys, rng)
    if name == "EA":
        return realworld.email_keys(n_keys, rng)
    if name == "DE":
        return synthetic.dense_keys(n_keys)
    if name == "RS":
        return synthetic.random_sparse_keys(n_keys, rng)
    if name == "RD":
        return synthetic.random_dense_keys(n_keys, rng)
    raise WorkloadError(f"unknown workload {name!r}")


def _generate_operations(
    loaded,
    reserve,
    n_ops: int,
    mix: OperationMix,
    theta: float,
    insert_share_of_writes: float,
    rng: np.random.Generator,
    scan_ratio: float = 0.0,
    scan_length: int = 50,
) -> OperationStream:
    from repro.workloads.zipf import ZipfSampler

    if n_ops < 0:
        raise WorkloadError(f"n_ops must be >= 0: {n_ops}")

    # Popularity ranking: rank r -> loaded[permutation[r]].  The
    # permutation is *partially* correlated with the key generators' own
    # ordering (generators emit keys of hot prefixes first): shuffling
    # within blocks keeps hot ranks on hot prefixes — which is what
    # makes the per-prefix op histogram peak where the key histogram
    # peaks, as in Fig. 3 — and then half of all positions are swapped
    # at random so the peak does not absorb the whole stream.
    n_loaded = len(loaded)
    permutation = np.arange(n_loaded)
    block = max(64, n_loaded // 256)
    for start in range(0, n_loaded, block):
        segment = permutation[start : start + block]
        rng.shuffle(segment)
        permutation[start : start + block] = segment
    swap_from = rng.choice(n_loaded, size=n_loaded // 2, replace=False)
    swap_to = swap_from.copy()
    rng.shuffle(swap_to)
    permutation[swap_from] = permutation[swap_to]
    sampler = ZipfSampler(len(loaded), theta, rng)
    ranks = sampler.sample(n_ops)
    is_write = rng.random(n_ops) < mix.write_ratio
    is_insert = rng.random(n_ops) < insert_share_of_writes

    is_scan = rng.random(n_ops) < scan_ratio
    scan_counts = rng.integers(1, scan_length + 1, size=n_ops)

    # Materialising 1M+ Operations dominates workload build time, so the
    # numpy arrays are resolved to plain Python lists up front (indexing
    # a numpy scalar per op is ~5x slower than a list element) and the
    # rank->key indirection is applied as one vectorised gather.
    key_indices = permutation[ranks].tolist()
    write_flags = is_write.tolist()
    insert_flags = is_insert.tolist()
    scan_flags = is_scan.tolist()
    count_list = scan_counts.tolist()
    write_kind, read_kind, scan_kind = OpKind.WRITE, OpKind.READ, OpKind.SCAN

    reserve_iter = iter(reserve)
    operations = []
    append = operations.append
    for op_id in range(n_ops):
        if write_flags[op_id]:
            if insert_flags[op_id]:
                new_key = next(reserve_iter, None)
                if new_key is not None:
                    append(Operation(op_id, write_kind, new_key, op_id))
                    continue
            append(
                Operation(op_id, write_kind, loaded[key_indices[op_id]], op_id)
            )
        else:
            key = loaded[key_indices[op_id]]
            if scan_flags[op_id]:
                append(
                    Operation(op_id, scan_kind, key, scan_count=count_list[op_id])
                )
            else:
                append(Operation(op_id, read_kind, key))
    return OperationStream(operations)
