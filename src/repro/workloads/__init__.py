"""Workload generation (paper §IV-A).

The paper evaluates six workloads: three real-world key sets — *IPGEO*
(GeoLite2 IP→country records), *DICT* (English words), *EA* (e-mail
addresses) — and three synthetic 8-byte-integer sets — *DE* (dense), *RS*
(random sparse), *RD* (random dense) — each with 50 M keys and a
configurable read/write operation mix (50/50 by default).

We cannot ship the proprietary traces, so :mod:`repro.workloads.realworld`
generates seeded synthetic equivalents that reproduce the *documented*
distributional properties: the skewed per-prefix operation histograms of
Fig. 3 (one hot prefix such as ``0x67`` receiving an order of magnitude
more operations than the median) and the spatial concentration (a few
percent of the nodes receiving almost all traversals).

Use :func:`make_workload` as the single entry point:

    wl = make_workload("IPGEO", n_keys=100_000, n_ops=200_000, seed=1)
"""

from repro.workloads.ops import (
    OpKind,
    Operation,
    OperationStream,
    Workload,
)
from repro.workloads.factory import WORKLOAD_NAMES, make_workload
from repro.workloads.mixes import MIXES, OperationMix
from repro.workloads.histogram import PrefixHistogram, concentration
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "MIXES",
    "OpKind",
    "Operation",
    "OperationMix",
    "OperationStream",
    "PrefixHistogram",
    "WORKLOAD_NAMES",
    "Workload",
    "ZipfSampler",
    "concentration",
    "make_workload",
]
