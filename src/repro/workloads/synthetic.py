"""Synthetic 8-byte-integer key sets (paper §IV-A, after Leis et al. [9]).

* **DE** — *dense*: keys ``0 .. n-1``, loaded in ascending order.  Dense
  keys make the ART degenerate toward a traditional radix tree with full
  N256 fan-out near the leaves and a long all-zero compressed prefix on
  top.
* **RD** — *random dense*: the same dense key set, loaded in random
  order — same final structure as DE, different insertion churn.
* **RS** — *random sparse*: ``n`` unique keys drawn uniformly from the
  full 64-bit space; the tree is shallow (the first byte already spreads
  keys over all 256 children) but paths are long in compressed-prefix
  bytes.

The paper uses 50 M keys; every generator here takes ``n_keys`` so the
benchmarks can run scaled-down while keeping the distributions intact.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.art.keys import encode_u64
from repro.errors import WorkloadError


def encode_u64_batch(values: np.ndarray) -> List[bytes]:
    """Vectorised :func:`~repro.art.keys.encode_u64` over an array.

    One big-endian cast + one buffer concatenation, then C-level slicing
    — byte-identical to encoding each value individually.
    """
    buf = np.ascontiguousarray(values, dtype=np.uint64).astype(">u8").tobytes()
    return [buf[i : i + 8] for i in range(0, len(buf), 8)]


def dense_keys(n_keys: int) -> List[bytes]:
    """DE: ``0..n-1`` ascending."""
    _check(n_keys)
    return encode_u64_batch(np.arange(n_keys, dtype=np.uint64))


def random_dense_keys(n_keys: int, rng: np.random.Generator) -> List[bytes]:
    """RD: ``0..n-1`` in a random permutation."""
    _check(n_keys)
    return encode_u64_batch(rng.permutation(n_keys).astype(np.uint64))


def random_sparse_keys(n_keys: int, rng: np.random.Generator) -> List[bytes]:
    """RS: ``n`` unique uniform draws from ``[0, 2**64)``."""
    _check(n_keys)
    seen = set()
    keys: List[bytes] = []
    # Collisions are astronomically rare for realistic n, but the loop
    # guarantees uniqueness regardless.  The draw pattern (one batch of
    # `need` values per round) is kept identical to the scalar version
    # so seeded key sets are unchanged.
    while len(keys) < n_keys:
        need = n_keys - len(keys)
        draws = rng.integers(0, 2**64, size=need, dtype=np.uint64)
        if not seen and len(np.unique(draws)) == need:
            # Fast path (the overwhelmingly common case): every draw is
            # fresh, so the whole batch encodes in one shot.
            keys.extend(encode_u64_batch(draws))
            if len(keys) == n_keys:
                break
            seen.update(draws.tolist())
            continue
        for value in draws.tolist():
            if value not in seen:
                seen.add(value)
                keys.append(encode_u64(value))
    return keys


def _check(n_keys: int) -> None:
    if n_keys <= 0:
        raise WorkloadError(f"n_keys must be positive: {n_keys}")
