"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so a
caller embedding the simulator can catch one type.  The subtypes separate
the three ways a simulation can go wrong: the caller handed us bad input
(:class:`ConfigError`, :class:`KeyEncodingError`), the index was asked to do
something impossible (:class:`TreeError` and friends), or an internal
invariant of a hardware model was violated (:class:`SimulationError` — these
indicate a bug in the simulator itself and are worth reporting).
"""

from __future__ import annotations

from typing import Dict, Optional


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent.

    Raised eagerly at construction time (e.g. a ``DCARTConfig`` with zero
    SOUs, a cache with a non-power-of-two line size) so that a bad setup
    never produces silently wrong numbers.
    """


class KeyEncodingError(ReproError):
    """A key could not be encoded into binary-comparable form."""


class TreeError(ReproError):
    """Base class for Adaptive-Radix-Tree errors."""


class KeyNotFoundError(TreeError, KeyError):
    """A lookup/delete/update addressed a key that is not in the tree."""

    def __init__(self, key: bytes):
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:  # KeyError quotes its arg; we want hex
        return f"key not found: {self.key.hex()}"


class DuplicateKeyError(TreeError):
    """An insert addressed a key that is already present.

    The ART API distinguishes ``insert`` (new key) from ``update``
    (existing key); engines rely on the distinction to attribute
    structure-modifying work correctly.
    """

    def __init__(self, key: bytes):
        super().__init__(key)
        self.key = key

    def __str__(self) -> str:
        return f"duplicate key: {self.key.hex()}"


class SimulationError(ReproError):
    """An internal invariant of a hardware model was violated."""


class WorkloadError(ReproError):
    """A workload specification is invalid or cannot be generated."""


class FaultError(ReproError):
    """Base class for injected-fault failures (the chaos harness).

    Unlike :class:`SimulationError`, a ``FaultError`` is an *expected*
    outcome of a faulted run: the machine was broken on purpose and could
    not degrade gracefully any further.  It carries a structured
    ``diagnostics`` payload (per-unit state at the moment of failure)
    that round-trips through :meth:`to_dict`/:meth:`from_dict` so a
    harness can log, ship, and re-hydrate the failure report.
    """

    def __init__(self, message: str, diagnostics: Optional[Dict] = None):
        super().__init__(message)
        self.message = message
        self.diagnostics: Dict = dict(diagnostics or {})

    def to_dict(self) -> Dict:
        """Serialise the failure for logs/telemetry (JSON-safe)."""
        return {
            "type": type(self).__name__,
            "message": self.message,
            "diagnostics": self.diagnostics,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultError":
        """Re-hydrate a failure report produced by :meth:`to_dict`."""
        subtype = _FAULT_TYPES.get(payload.get("type", ""), cls)
        return subtype(payload["message"], payload.get("diagnostics"))


class SouFailedError(FaultError):
    """No surviving SOU could take over a failed unit's buckets."""


class WatchdogTimeout(FaultError):
    """A batch exceeded its cycle budget and was aborted by the watchdog."""


class SimulatedCrash(FaultError):
    """The machine was killed at a scheduled crash point (chaos harness).

    Raised by the durability subsystem when a :class:`CrashFault` fires:
    whatever bytes reached the log or checkpoint directory *before* the
    crash point are on disk (possibly torn mid-record), everything after
    is lost, and in-memory state must be presumed gone.  Recovery's
    contract is to rebuild exactly the committed prefix from those files.
    """


class RecoveryError(ReproError):
    """Recovery could not produce a usable tree.

    Raised when *no* valid checkpoint/WAL state exists at all (empty or
    missing directory) — per-artifact corruption is not an error but an
    expected input, reported in the
    :class:`~repro.durability.recover.RecoveryResult` instead.
    """


_FAULT_TYPES = {
    "FaultError": FaultError,
    "SouFailedError": SouFailedError,
    "WatchdogTimeout": WatchdogTimeout,
    "SimulatedCrash": SimulatedCrash,
}
