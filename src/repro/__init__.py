"""DCART reproduction: a data-centric accelerator for the Adaptive Radix Tree.

Behavioural/cycle-level reproduction of *"A Data-Centric Hardware
Accelerator for Efficient Adaptive Radix Tree"* (DAC 2025): the full ART
substrate, the five comparison engines, the DCART accelerator model, the
paper's six workloads, and a harness that regenerates every figure and
table of the evaluation.

Quick tour (see ``examples/quickstart.py``):

    from repro import AdaptiveRadixTree, encode_u64
    tree = AdaptiveRadixTree()
    tree.insert(encode_u64(42), "value")

    from repro import make_workload, DcartAccelerator
    workload = make_workload("IPGEO", n_keys=10_000, n_ops=100_000)
    result = DcartAccelerator().run(workload)
    print(result.summary())

    from repro.harness import experiments
    print(experiments.fig9_performance().render())
"""

from repro.art import (
    AdaptiveRadixTree,
    TraversalRecord,
    TreeStats,
    decode_u64,
    encode_email,
    encode_ipv4,
    encode_str,
    encode_u32,
    encode_u64,
    record_traversal,
)
from repro.core import DCARTConfig, DcartAccelerator
from repro.engines import (
    ArtRowexEngine,
    CuArtEngine,
    DcartCEngine,
    HeartEngine,
    RunResult,
    SmartEngine,
)
from repro.errors import (
    ConfigError,
    DuplicateKeyError,
    KeyEncodingError,
    KeyNotFoundError,
    ReproError,
    SimulationError,
    TreeError,
    WorkloadError,
)
from repro.workloads import (
    MIXES,
    OpKind,
    Operation,
    OperationStream,
    PrefixHistogram,
    WORKLOAD_NAMES,
    Workload,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveRadixTree",
    "ArtRowexEngine",
    "ConfigError",
    "CuArtEngine",
    "DCARTConfig",
    "DcartAccelerator",
    "DcartCEngine",
    "DuplicateKeyError",
    "HeartEngine",
    "KeyEncodingError",
    "KeyNotFoundError",
    "MIXES",
    "OpKind",
    "Operation",
    "OperationStream",
    "PrefixHistogram",
    "ReproError",
    "RunResult",
    "SimulationError",
    "SmartEngine",
    "TraversalRecord",
    "TreeError",
    "TreeStats",
    "WORKLOAD_NAMES",
    "Workload",
    "WorkloadError",
    "decode_u64",
    "encode_email",
    "encode_ipv4",
    "encode_str",
    "encode_u32",
    "encode_u64",
    "make_workload",
    "record_traversal",
]
