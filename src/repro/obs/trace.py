"""The BatchTracer: per-batch spans and Chrome ``trace_event`` export.

The accelerator's overlap model already computes, for every batch, the
cycle at which its SOUs begin (``Timeline.batch_start_cycles``) — the
tracer turns that timeline plus per-batch component cycles into spans:

* one **PCU combine** span per batch (overlapped under the previous
  batch's SOU work when ``enable_overlap`` is on),
* one span per **active SOU** (the batch's compute phase),
* one **HBM** span (the bandwidth-bound alternative to compute; the
  batch pays ``max(compute, bandwidth)``, so the two spans share a
  start cycle and the longer one is the critical path),
* one **sync** span (global-sync serialisation after compute),
* a **redispatch** span when ring failover billed cycles,
* a **durability** span (WAL + checkpoint) when a manager is attached.

Export is Chrome/Perfetto ``trace_event`` JSON (``ph: "X"`` complete
events, microsecond timestamps derived from the FPGA clock) — load it
at chrome://tracing or https://ui.perfetto.dev.  Everything is derived
from simulation cycles, so traces are bit-identical across runs; the
only wall-clock read is the optional ``exported_at`` stamp, which is
opt-in (``stamp=True``), lives in trace *metadata* only, and is why
this module is carved out of reprolint's DET02 scope.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.batching import Timeline

#: Synthetic Chrome thread ids for the non-SOU tracks.  SOU ``s`` maps
#: to ``tid = TID_SOU_BASE + s``; the constants leave room for 63 SOUs.
TID_PCU = 0
TID_SOU_BASE = 1
TID_HBM = 64
TID_SYNC = 65
TID_REDISPATCH = 66
TID_DURABILITY = 67

_TRACE_PID = 1


@dataclass(slots=True)
class BatchSample:
    """Everything the accelerator knows about one batch's cycle bill."""

    batch_index: int
    n_ops: int
    pcu_cycles: int
    per_sou_cycles: Dict[int, int]
    compute_cycles: int
    bandwidth_cycles: int
    sync_cycles: int
    redispatch_cycles: int
    durability_cycles: int


@dataclass(slots=True)
class Span:
    """One rectangle on the trace: [start, start + duration) cycles."""

    name: str
    category: str
    tid: int
    start_cycle: int
    duration_cycles: int
    args: Dict[str, Any] = field(default_factory=dict)


class BatchTracer:
    """Records one :class:`BatchSample` per batch, renders spans lazily.

    Recording is a single guarded append per *batch* (not per op), so an
    attached tracer costs nothing measurable; with no tracer attached
    the accelerator's only extra work is one ``is not None`` test per
    batch.
    """

    def __init__(self) -> None:
        self.samples: List[BatchSample] = []
        self._timeline: Optional[Timeline] = None
        self._clock_hz: float = 0.0
        self._overlap: bool = True
        self._has_durability: bool = False

    def record_batch(self, sample: BatchSample) -> None:
        self.samples.append(sample)

    def finalize(
        self,
        timeline: Timeline,
        clock_hz: float,
        overlap: bool,
        has_durability: bool,
    ) -> None:
        """Attach the run's timeline; called once after the batch loop."""
        if len(timeline.batch_start_cycles) != len(self.samples):
            raise ValueError(
                "timeline has "
                f"{len(timeline.batch_start_cycles)} batch starts but the "
                f"tracer recorded {len(self.samples)} batches"
            )
        self._timeline = timeline
        self._clock_hz = clock_hz
        self._overlap = overlap
        self._has_durability = has_durability

    # ------------------------------------------------------------------
    # span construction
    # ------------------------------------------------------------------

    def _require_finalized(self) -> Timeline:
        if self._timeline is None:
            raise ValueError("BatchTracer.finalize() has not been called")
        return self._timeline

    def spans(self) -> List[Span]:
        """All spans, in batch order, start cycles from the timeline.

        Per batch the tracer always emits one PCU span, one span per
        active SOU, one HBM span, and one sync span (the latter two may
        have zero duration — they are kept so span counts are a pure
        function of batch count and SOU activity); a redispatch span
        appears only when failover billed cycles, and a durability span
        only when a manager was attached for the run.
        """
        timeline = self._require_finalized()
        starts = timeline.batch_start_cycles
        spans: List[Span] = []
        for i, sample in enumerate(self.samples):
            start = starts[i]
            # PCU combine: under overlap, batch 0 combines before the
            # clock starts and batch i+1 combines in the shadow of batch
            # i's SOU work; serially, batch i combines right before its
            # own SOUs start.
            if self._overlap:
                if i == 0:
                    combine_start = 0
                else:
                    combine_start = starts[i - 1]
            else:
                combine_start = start - sample.pcu_cycles
            spans.append(Span(
                name=f"combine batch {i}",
                category="pcu",
                tid=TID_PCU,
                start_cycle=combine_start,
                duration_cycles=sample.pcu_cycles,
                args={"batch": i, "ops": sample.n_ops},
            ))
            for sou_id in sorted(sample.per_sou_cycles):
                spans.append(Span(
                    name=f"batch {i}",
                    category="sou",
                    tid=TID_SOU_BASE + sou_id,
                    start_cycle=start,
                    duration_cycles=sample.per_sou_cycles[sou_id],
                    args={"batch": i, "sou": sou_id},
                ))
            spans.append(Span(
                name=f"batch {i}",
                category="hbm",
                tid=TID_HBM,
                start_cycle=start,
                duration_cycles=sample.bandwidth_cycles,
                args={"batch": i},
            ))
            tail = start + max(sample.compute_cycles, sample.bandwidth_cycles)
            spans.append(Span(
                name=f"batch {i}",
                category="sync",
                tid=TID_SYNC,
                start_cycle=tail,
                duration_cycles=sample.sync_cycles,
                args={"batch": i},
            ))
            tail += sample.sync_cycles
            if sample.redispatch_cycles > 0:
                spans.append(Span(
                    name=f"batch {i}",
                    category="redispatch",
                    tid=TID_REDISPATCH,
                    start_cycle=tail,
                    duration_cycles=sample.redispatch_cycles,
                    args={"batch": i},
                ))
            tail += sample.redispatch_cycles
            if self._has_durability:
                spans.append(Span(
                    name=f"batch {i}",
                    category="durability",
                    tid=TID_DURABILITY,
                    start_cycle=tail,
                    duration_cycles=sample.durability_cycles,
                    args={"batch": i},
                ))
        return spans

    def expected_span_count(self) -> int:
        """Span count as a pure function of the recorded samples."""
        count = 0
        for sample in self.samples:
            count += 3  # PCU + HBM + sync, always present
            count += len(sample.per_sou_cycles)
            if sample.redispatch_cycles > 0:
                count += 1
            if self._has_durability:
                count += 1
        return count

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def _track_names(self) -> Dict[int, str]:
        names = {TID_PCU: "PCU"}
        for sample in self.samples:
            for sou_id in sample.per_sou_cycles:
                names[TID_SOU_BASE + sou_id] = f"SOU {sou_id}"
        names[TID_HBM] = "HBM"
        names[TID_SYNC] = "Sync"
        names[TID_REDISPATCH] = "Redispatch"
        if self._has_durability:
            names[TID_DURABILITY] = "Durability"
        return names

    def to_chrome_trace(self, stamp: bool = False) -> Dict[str, Any]:
        """The run as a Chrome ``trace_event`` document.

        With ``stamp=False`` (the default, and what tests use) the
        document is a deterministic function of the simulation; with
        ``stamp=True`` a wall-clock ``exported_at`` field is added to
        the metadata (never to events) for humans comparing trace files.
        """
        self._require_finalized()
        us_per_cycle = 1e6 / self._clock_hz
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "args": {"name": "DCART"},
        }]
        for tid, label in sorted(self._track_names().items()):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": label},
            })
            events.append({
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"sort_index": tid},
            })
        for span in self.spans():
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_cycle * us_per_cycle,
                "dur": span.duration_cycles * us_per_cycle,
                "pid": _TRACE_PID,
                "tid": span.tid,
                "args": dict(span.args, cycles=span.duration_cycles),
            })
        metadata: Dict[str, Any] = {
            "schema": "trace-export/v1",
            "clock_hz": self._clock_hz,
            "n_batches": len(self.samples),
            "overlap": self._overlap,
            "durability": self._has_durability,
        }
        if stamp:
            # Wall-clock is banned everywhere else in the simulator
            # (reprolint DET02); the export stamp is the sanctioned
            # exception and never feeds back into simulated state.
            import datetime

            metadata["exported_at"] = (
                datetime.datetime.now(datetime.timezone.utc).isoformat()
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": metadata,
        }

    def write(self, path: str, stamp: bool = False) -> int:
        """Write the Chrome trace to ``path``; returns the event count."""
        doc = self.to_chrome_trace(stamp=stamp)
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp_path = tempfile.mkstemp(
            prefix=".trace-", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=1)
                handle.write("\n")
            os.replace(tmp_path, path)  # reprolint: disable=DUR01 -- trace export is a report, not durable state; fsync not required
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(doc["traceEvents"])

    # ------------------------------------------------------------------
    # terminal summary
    # ------------------------------------------------------------------

    def summary_table(self) -> str:
        """Aligned per-track busy-cycle table for terminal output."""
        timeline = self._require_finalized()
        total = timeline.total_cycles
        busy: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for span in self.spans():
            busy[span.tid] = busy.get(span.tid, 0) + span.duration_cycles
            counts[span.tid] = counts.get(span.tid, 0) + 1
        names = self._track_names()
        rows = [("track", "spans", "busy cycles", "share")]
        for tid in sorted(busy):
            share = busy[tid] / total if total else 0.0
            rows.append((
                names.get(tid, f"tid {tid}"),
                str(counts[tid]),
                str(busy[tid]),
                f"{share:6.1%}",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(4)]
        lines = [
            f"batch timeline: {len(self.samples)} batches, "
            f"{total} cycles total "
            f"({total / self._clock_hz * 1e6:.1f} us @ "
            f"{self._clock_hz / 1e6:.0f} MHz)"
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
                .rstrip()
            )
        return "\n".join(lines)
