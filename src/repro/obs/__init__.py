"""Observability: metrics registry, batch tracer, telemetry holder."""

from repro.obs.metrics import (
    EXTRA_VIEW,
    Histogram,
    MetricsRegistry,
    extra_view,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import BatchSample, BatchTracer, Span

__all__ = [
    "EXTRA_VIEW",
    "BatchSample",
    "BatchTracer",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "extra_view",
]
