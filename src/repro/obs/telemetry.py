"""The Telemetry holder an engine run reports into.

Attach one to any :class:`~repro.engines.base.Engine` (``engine.telemetry
= Telemetry()``) before calling ``run``; the engine fills the registry
and, when a tracer is present, records per-batch spans.  Attaching
telemetry never changes a :class:`~repro.engines.base.RunResult` — the
DCART accelerator builds an internal registry either way to derive
``result.extra``, so on/off runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import BatchTracer


@dataclass
class Telemetry:
    """What a run reports into: a registry, and optionally a tracer."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Optional[BatchTracer] = None

    @classmethod
    def with_tracer(cls) -> "Telemetry":
        return cls(registry=MetricsRegistry(), tracer=BatchTracer())
