"""The MetricsRegistry: named counters, gauges, and histograms.

Every hardware unit of the DCART model (PCU, Dispatcher, the SOUs, the
Shortcut_Table, the Tree_buffers, the memsim cache, the
DurabilityManager) exposes a ``report_metrics(registry)`` hook that
writes its counters here once per run, replacing the ad-hoc
``RunResult.extra`` plumbing.  ``extra`` survives as a *view* over the
registry (:data:`EXTRA_VIEW` / :func:`extra_view`): the accelerator
derives the legacy keys from registry entries, so the two can never
drift and telemetry being attached or not cannot change a result.

Design constraints:

* **Deterministic** — values come only from simulation state; rendering
  and serialisation sort by name.  No wall-clock, no RNG.
* **Near-zero overhead** — components report once per run (a few dozen
  dict writes), never per operation; the accelerator's hot loop does
  not touch the registry at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Union

from repro.errors import ConfigError

Number = Union[int, float]


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (no buckets).

    Count / sum / min / max are enough for the per-batch cycle
    distributions the tracer summarises; full percentile work belongs to
    ``RunResult.latencies_ns``, which already exists.
    """

    count: int = 0
    total: float = 0.0
    min_value: float = 0.0
    max_value: float = 0.0

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min_value = self.max_value = float(value)
        else:
            if value < self.min_value:
                self.min_value = float(value)
            if value > self.max_value:
                self.max_value = float(value)
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def as_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A flat, name-keyed store of counters, gauges, and histograms.

    Names are dotted paths (``sou.3.stage.traverse.traversals``); a name
    belongs to exactly one kind — re-using a counter name as a gauge is
    a :class:`~repro.errors.ConfigError`, not a silent overwrite.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Number] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # writers
    # ------------------------------------------------------------------

    def counter(self, name: str, amount: int = 1) -> int:
        """Accumulate ``amount`` into counter ``name`` (created at 0).

        ``amount`` may be 0 — that still registers the counter, so a
        run always exposes the full metric set even when nothing fired.
        """
        self._check_kind(name, self._counters)
        value = self._counters.get(name, 0) + amount
        self._counters[name] = value
        return value

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._check_kind(name, self._gauges)
        self._gauges[name] = value

    def observe(self, name: str, value: Number) -> None:
        """Add one observation to histogram ``name`` (created empty)."""
        self._check_kind(name, self._histograms)
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def _check_kind(self, name: str, own: Mapping[str, object]) -> None:
        for store in (self._counters, self._gauges, self._histograms):
            if store is not own and name in store:
                raise ConfigError(
                    f"metric {name!r} already registered with a different kind"
                )

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def get(self, name: str) -> Number:
        """Value of a counter or gauge (histograms via :meth:`histogram`)."""
        if name in self._counters:
            return self._counters[name]
        if name in self._gauges:
            return self._gauges[name]
        raise KeyError(name)

    def histogram(self, name: str) -> Histogram:
        return self._histograms[name]

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Nested, name-sorted snapshot (stable for JSON/golden use)."""
        counters: Dict[str, object] = {
            k: self._counters[k] for k in sorted(self._counters)
        }
        gauges: Dict[str, object] = {
            k: self._gauges[k] for k in sorted(self._gauges)
        }
        histograms: Dict[str, object] = {
            k: self._histograms[k].as_dict()
            for k in sorted(self._histograms)
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self) -> str:
        """Aligned text table of every metric, sorted by name."""
        rows = [("metric", "kind", "value")]
        for name in sorted(self._counters):
            rows.append((name, "counter", str(self._counters[name])))
        for name in sorted(self._gauges):
            value = self._gauges[name]
            text = f"{value:.6g}" if isinstance(value, float) else str(value)
            rows.append((name, "gauge", text))
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            rows.append((
                name,
                "histogram",
                f"n={hist.count} mean={hist.mean:.6g} "
                f"min={hist.min_value:.6g} max={hist.max_value:.6g}",
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(2)]
        return "\n".join(
            f"{name.ljust(widths[0])}  {kind.ljust(widths[1])}  {value}"
            for name, kind, value in rows
        )


#: ``RunResult.extra`` key -> registry metric name.  The accelerator
#: registers every metric on the right-hand side each run, then builds
#: ``extra`` from the registry through :func:`extra_view` — extra *is*
#: a view, so telemetry cannot diverge from the legacy counters.
EXTRA_VIEW: Dict[str, str] = {
    "prefix_byte_offset": "run.prefix_byte_offset",
    "tree_buffer_hit_rate": "tree_buffer.hit_rate",
    "shortcut_buffer_hit_rate": "shortcut_table.buffer_hit_rate",
    "shortcut_entries": "shortcut_table.entries",
    "stale_shortcuts": "shortcut_table.stale_hits",
    "stale_shortcut_repairs": "sou.stale_shortcut_repairs",
    "shortcut_hits": "sou.shortcut_hits",
    "shortcut_misses": "sou.shortcut_misses",
    "traversals": "sou.traversals",
    "hidden_pcu_cycles": "run.hidden_pcu_cycles",
    "overlap_efficiency": "run.overlap_efficiency",
    "total_cycles": "run.total_cycles",
    "offchip_lines": "hbm.offchip_lines",
    "global_sync_ops": "sync.global_ops",
    "spilled_bytes": "pcu.spilled_bytes",
}


def extra_view(registry: MetricsRegistry) -> Dict[str, Number]:
    """The legacy ``RunResult.extra`` keys, read out of the registry."""
    return {key: registry.get(name) for key, name in EXTRA_VIEW.items()}
