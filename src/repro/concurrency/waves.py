"""Deterministic wave model of concurrent operation interleaving.

The real systems in the paper keep a large number of operations in flight
at once (96 CPU hardware threads with deep software queues; thousands of
GPU threads).  We model that with *waves*: a window of ``window`` ops is
considered concurrently outstanding; the next window starts when the
current one drains.  Within a window:

* operations touching *different* nodes run in parallel, limited by the
  ``n_workers`` execution resources;
* operations touching the *same* node, at least one of them a write,
  form a :class:`ConflictGroup` and serialise behind its lock/CAS —
  each queued member is one contention and pays a queueing delay.

A window's duration is the maximum of (a) the compute-parallel time of
all its operations over ``n_workers`` and (b) its slowest conflict
group's serialised time — so a hot node stalls the window even when 95
other workers are idle, which is exactly the pathology of Fig. 2(d)/(e).

The model is O(n) in the number of operations and fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class ConflictGroup:
    """Concurrent operations on one node within one window."""

    node_id: int
    op_indices: List[int]
    writers: int

    @property
    def size(self) -> int:
        return len(self.op_indices)

    @property
    def is_conflicted(self) -> bool:
        return self.size > 1 and self.writers > 0

    @property
    def contentions(self) -> int:
        """Queued acquisitions: everyone behind the first holder."""
        return self.size - 1 if self.is_conflicted else 0


@dataclass
class WaveReport:
    """Aggregate outcome of simulating one operation stream."""

    n_ops: int = 0
    n_windows: int = 0
    contentions: int = 0
    conflicted_ops: int = 0
    conflicted_readers: int = 0  # readers caught in a writer's group
    parallel_seconds: float = 0.0       # compute-limited component
    serialization_seconds: float = 0.0  # extra time lost to conflicts
    window_seconds: List[float] = field(default_factory=list)
    latencies_ns: List[float] = field(default_factory=list)  # per op, in order

    @property
    def total_seconds(self) -> float:
        return self.parallel_seconds + self.serialization_seconds


class WaveSimulator:
    """Runs the wave model over per-operation (node, is_write, cost) data."""

    def __init__(
        self,
        n_workers: int,
        window: int,
        contention_penalty_ns: float,
        spin_wait: bool = False,
    ):
        if n_workers <= 0:
            raise ConfigError(f"n_workers must be positive: {n_workers}")
        if window <= 0:
            raise ConfigError(f"window must be positive: {window}")
        if contention_penalty_ns < 0:
            raise ConfigError(
                f"contention penalty must be >= 0: {contention_penalty_ns}"
            )
        self.n_workers = n_workers
        self.window = window
        self.contention_penalty_ns = contention_penalty_ns
        #: With ``spin_wait`` every queued waiter *burns its thread* for
        #: the whole time it waits (lock convoys / CAS retry loops), so a
        #: conflict group of size k wastes O(k^2) thread-time — the
        #: collapse the paper's Fig. 2(d)/(e) measures.  Without it, only
        #: the critical path of the slowest group extends the window.
        self.spin_wait = spin_wait

    def run(
        self,
        targets: Sequence[int],
        is_write: Sequence[bool],
        cost_ns: Sequence[float],
        hold_ns: Sequence[float] = None,
        collect_latencies: bool = False,
    ) -> WaveReport:
        """Simulate a stream.

        ``targets[i]`` is the node operation *i* operates on (lock
        granularity) and ``cost_ns[i]`` its lock-free service time.
        ``hold_ns[i]`` is the part of the service spent *inside* the
        critical section (the node modification itself) — only that part
        serialises among conflicting operations.  When omitted, the whole
        service is treated as held (the most pessimistic reading).

        With ``collect_latencies`` the report carries a per-operation
        latency: the op's own service plus the queueing delay it suffered
        behind earlier members of its conflict group.
        """
        n = len(targets)
        if not (len(is_write) == len(cost_ns) == n):
            raise ConfigError("targets/is_write/cost_ns must have equal length")
        if hold_ns is None:
            hold_ns = cost_ns
        elif len(hold_ns) != n:
            raise ConfigError("hold_ns must match targets in length")
        report = WaveReport(n_ops=n)
        latencies = [0.0] * n if collect_latencies else None

        for start in range(0, n, self.window):
            end = min(start + self.window, n)
            report.n_windows += 1

            groups: Dict[int, Tuple[List[int], int]] = {}
            window_cost = 0.0
            for i in range(start, end):
                window_cost += cost_ns[i]
                indices, writers = groups.setdefault(targets[i], ([], 0))
                indices.append(i)
                if is_write[i]:
                    groups[targets[i]] = (indices, writers + 1)

            parallel_ns = window_cost / self.n_workers
            slowest_group_ns = 0.0
            spin_ns = 0.0
            for node_id, (indices, writers) in groups.items():
                group = ConflictGroup(node_id, indices, writers)
                if group.is_conflicted:
                    report.contentions += group.contentions
                    report.conflicted_ops += group.size
                    report.conflicted_readers += group.size - group.writers
                    serial = (
                        sum(hold_ns[i] for i in indices)
                        + group.contentions * self.contention_penalty_ns
                    )
                    slowest_group_ns = max(slowest_group_ns, serial)
                    queued = 0.0
                    for i in indices:
                        if latencies is not None:
                            latencies[i] = cost_ns[i] + queued
                        spin_ns += queued
                        queued += hold_ns[i] + self.contention_penalty_ns
                elif latencies is not None:
                    for i in indices:
                        latencies[i] = cost_ns[i]

            if self.spin_wait:
                # Waiters occupy their workers while queued; the wasted
                # thread-time competes with useful work for the cores.
                window_ns = max(
                    parallel_ns + spin_ns / self.n_workers, slowest_group_ns
                )
            else:
                window_ns = max(parallel_ns, slowest_group_ns)
            report.parallel_seconds += parallel_ns * 1e-9
            report.serialization_seconds += max(0.0, window_ns - parallel_ns) * 1e-9
            report.window_seconds.append(window_ns * 1e-9)

        if latencies is not None:
            report.latencies_ns = latencies
        return report

    def conflict_groups(
        self, targets: Sequence[int], is_write: Sequence[bool]
    ) -> List[ConflictGroup]:
        """Enumerate conflict groups window by window (for inspection)."""
        out: List[ConflictGroup] = []
        n = len(targets)
        for start in range(0, n, self.window):
            end = min(start + self.window, n)
            groups: Dict[int, Tuple[List[int], int]] = {}
            for i in range(start, end):
                indices, writers = groups.setdefault(targets[i], ([], 0))
                indices.append(i)
                if is_write[i]:
                    groups[targets[i]] = (indices, writers + 1)
            for node_id, (indices, writers) in groups.items():
                out.append(ConflictGroup(node_id, indices, writers))
        return out
