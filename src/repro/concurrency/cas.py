"""Cost model for atomic compare-and-swap operations.

The paper motivates DCART partly with the observation (its reference
[21], Schweizer et al.) that an atomic CAS is *more than 15× slower* when
its target line resides in RAM than when it sits in L1.  CAS-based ART
variants (Heart, SMART) therefore do not escape the locality problem:
their atomics mostly hit RAM because tree traversal thrashes the cache.

:class:`CasCostModel` prices one CAS given where its line was found, and
accumulates the counts the evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class CasCostModel:
    """Latency of a CAS by residency of the target cache line."""

    l1_ns: float = 20.0
    ram_ns: float = 320.0  # >= 15x the L1 cost, per [21]
    failed_retry_ns: float = 40.0  # extra spin cost per failed attempt

    def __post_init__(self):
        if self.l1_ns <= 0 or self.ram_ns <= 0 or self.failed_retry_ns < 0:
            raise ConfigError("CAS costs must be positive")
        if self.ram_ns < self.l1_ns:
            raise ConfigError("RAM CAS cannot be cheaper than L1 CAS")
        self.count_cached = 0
        self.count_uncached = 0
        self.count_retries = 0

    @property
    def slowdown(self) -> float:
        """RAM-vs-L1 latency ratio (the paper's '>15x')."""
        return self.ram_ns / self.l1_ns

    def cost_ns(self, line_cached: bool, retries: int = 0) -> float:
        """Price one CAS and record it."""
        if retries < 0:
            raise ConfigError(f"retries must be >= 0: {retries}")
        if line_cached:
            self.count_cached += 1
            base = self.l1_ns
        else:
            self.count_uncached += 1
            base = self.ram_ns
        self.count_retries += retries
        return base + retries * self.failed_retry_ns

    @property
    def total_cas(self) -> int:
        return self.count_cached + self.count_uncached
