"""Concurrency-control simulation (paper §II-B, Challenge 2).

Real ART deployments serialise conflicting writers with node-level locks
(the ROWEX protocol of Leis et al. [9]) or CAS loops (Heart, SMART).  A
reproduction cannot measure *real* contention — pthread interleavings are
nondeterministic and Python's GIL would falsify everything — so this
subpackage simulates it:

* :mod:`waves` — a deterministic interleaving model: a window of
  operations is outstanding at once; operations in the same window that
  touch the same node, at least one writing, conflict and serialise.
* :mod:`locks` — node-level lock accounting under ROWEX rules (writers
  lock; a node-type change also locks the parent).
* :mod:`cas` — the cost asymmetry of atomic operations the paper cites
  (a CAS on RAM-resident data is >15× slower than on L1-resident data
  [21]).
"""

from repro.concurrency.cas import CasCostModel
from repro.concurrency.locks import LockAccounting, RowexLockTable
from repro.concurrency.waves import ConflictGroup, WaveReport, WaveSimulator

__all__ = [
    "CasCostModel",
    "ConflictGroup",
    "LockAccounting",
    "RowexLockTable",
    "WaveReport",
    "WaveSimulator",
]
