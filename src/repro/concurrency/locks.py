"""Node-level lock accounting under the ROWEX protocol.

ROWEX (*Read-Optimized Write EXclusion*, Leis et al. [9]) as the paper
summarises it: writers take a per-node lock before modifying the node;
readers proceed without locks (they validate versions); and when an
operation changes the *type* of a node (e.g. an N4 splitting into an N16),
the parent node must be locked too.

:class:`RowexLockTable` turns a stream of already-grouped conflict
information (from :mod:`repro.concurrency.waves`) into the counters the
paper reports — lock acquisitions and lock *contentions* (an acquisition
that had to wait because a concurrent operation held the node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LockAccounting:
    """Counters for one engine run."""

    acquisitions: int = 0
    contentions: int = 0
    parent_acquisitions: int = 0  # extra locks due to node-type changes
    hold_events: Dict[int, int] = field(default_factory=dict)  # node -> times locked

    @property
    def contention_rate(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contentions / self.acquisitions

    def merge(self, other: "LockAccounting") -> None:
        self.acquisitions += other.acquisitions
        self.contentions += other.contentions
        self.parent_acquisitions += other.parent_acquisitions
        for node, count in other.hold_events.items():
            self.hold_events[node] = self.hold_events.get(node, 0) + count


class RowexLockTable:
    """Accounts write locks for operations, ROWEX-style."""

    def __init__(self):
        self.accounting = LockAccounting()

    def lock_for_write(
        self,
        node_id: int,
        waiting_behind: int,
        changes_node_type: bool = False,
        parent_id: int = None,
    ) -> int:
        """Record a write lock on ``node_id``.

        ``waiting_behind`` is the number of concurrent operations already
        queued on the same node (from the wave model): each such queued
        acquisition is one *contention*.  Returns the number of locks
        taken (1, or 2 when the parent must also be locked).
        """
        acc = self.accounting
        acc.acquisitions += 1
        acc.hold_events[node_id] = acc.hold_events.get(node_id, 0) + 1
        if waiting_behind > 0:
            acc.contentions += 1
        locks = 1
        if changes_node_type:
            acc.acquisitions += 1
            acc.parent_acquisitions += 1
            locks = 2
            if parent_id is not None:
                acc.hold_events[parent_id] = acc.hold_events.get(parent_id, 0) + 1
        return locks

    @property
    def hottest_node(self):
        """``(node_id, times_locked)`` of the most-contended node."""
        events = self.accounting.hold_events
        if not events:
            return None
        node = max(events, key=events.get)
        return node, events[node]
