"""One entry point per paper figure/table (the per-experiment index).

Every function returns an :class:`ExperimentResult` — headers + rows that
the benchmarks print with :func:`repro.harness.formatting.format_table`,
plus the raw per-engine results for assertions.  All functions share a
memoised engine×workload matrix so a benchmark session runs each
configuration once.

Defaults are scaled down from the paper's 50 M keys (see
``runner.scaled_cpu_costs`` for why ratios survive the scaling); pass
larger ``n_keys``/``n_ops`` to push fidelity.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.accelerator import DcartAccelerator
from repro.core.config import DCARTConfig
from repro.engines.base import RunResult
from repro.harness.comparison import band, energy_savings, speedups
from repro.harness.formatting import format_table
from repro.harness.runner import (
    default_engines,
    run_matrix,
    scaled_dcart_config,
)
from repro.workloads import (
    MIXES,
    PrefixHistogram,
    WORKLOAD_NAMES,
    concentration,
    make_workload,
)

#: Default experiment scale (paper: 50 M keys, we default to 10 k — see
#: DESIGN.md §1 on scale substitution).
DEFAULT_KEYS = 10_000
DEFAULT_OPS = 100_000
DEFAULT_SEED = 1

REALWORLD = ("IPGEO", "DICT", "EA")
MOTIVATION_ENGINES = ("ART", "Heart", "SMART")
ALL_ENGINES = ("ART", "Heart", "SMART", "CuART", "DCART-C", "DCART")


@dataclass
class ExperimentResult:
    """A figure/table rendered as rows, plus the raw run results."""

    experiment: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""
    raw: Dict[str, Dict[str, RunResult]] = field(default_factory=dict)

    def render(self) -> str:
        table = format_table(self.headers, self.rows, title=self.experiment)
        if self.notes:
            table += f"\n{self.notes}"
        return table


@functools.lru_cache(maxsize=64)
def _workload(name: str, n_keys: int, n_ops: int, seed: int, write_ratio=None):
    return make_workload(
        name, n_keys=n_keys, n_ops=n_ops, seed=seed, write_ratio=write_ratio
    )


@functools.lru_cache(maxsize=32)
def _matrix(
    names: Tuple[str, ...],
    engines: Tuple[str, ...],
    n_keys: int,
    n_ops: int,
    seed: int,
    write_ratio=None,
) -> Dict[str, Dict[str, RunResult]]:
    workloads = [_workload(n, n_keys, n_ops, seed, write_ratio) for n in names]
    return run_matrix(default_engines(n_keys, include=engines), workloads)


def clear_cache() -> None:
    """Drop memoised workloads/results (tests use this between scales)."""
    _workload.cache_clear()
    _matrix.cache_clear()


# ----------------------------------------------------------------------
# Fig. 2 — motivation study
# ----------------------------------------------------------------------

def fig2a_breakdown(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 2(a): execution-time breakdown of the CPU baselines.

    Paper's claim: >95.82 % of SMART's execution time is tree traversal
    plus synchronisation.
    """
    results = _matrix(WORKLOAD_NAMES, MOTIVATION_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        for engine in MOTIVATION_ENGINES:
            r = results[workload][engine]
            rows.append(
                [
                    workload,
                    engine,
                    100 * r.breakdown.share("traverse"),
                    100 * r.sync_share,
                    100 * r.breakdown.share("other"),
                    100 * (r.breakdown.share("traverse") + r.sync_share),
                ]
            )
    return ExperimentResult(
        "Fig. 2(a) - execution-time breakdown (%)",
        ["workload", "engine", "traverse", "sync", "other", "traverse+sync"],
        rows,
        notes="paper: traverse+sync > 95.82 % for SMART on every workload",
        raw=results,
    )


def fig2b_redundancy(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 2(b): share of traversed nodes that are redundant.

    Paper: >77.8 % (SMART), up to 86.1 % (ART) / 82.5 % (Heart).
    """
    results = _matrix(WORKLOAD_NAMES, MOTIVATION_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        row = [workload]
        for engine in MOTIVATION_ENGINES:
            row.append(100 * results[workload][engine].redundancy_ratio)
        rows.append(row)
    return ExperimentResult(
        "Fig. 2(b) - redundant traversed nodes (%)",
        ["workload"] + list(MOTIVATION_ENGINES),
        rows,
        notes="paper: ART up to 86.1 %, Heart 82.5 %, SMART > 77.8 %",
        raw=results,
    )


def fig2c_utilisation(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 2(c): cacheline utilisation of traversal (paper: ~20.2 %)."""
    results = _matrix(WORKLOAD_NAMES, MOTIVATION_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        row = [workload]
        for engine in MOTIVATION_ENGINES:
            row.append(100 * results[workload][engine].cacheline_utilisation)
        rows.append(row)
    return ExperimentResult(
        "Fig. 2(c) - cacheline utilisation (%)",
        ["workload"] + list(MOTIVATION_ENGINES),
        rows,
        notes="paper: 20.2 % on average",
        raw=results,
    )


def fig2d_sync_vs_ops(
    n_keys: int = DEFAULT_KEYS,
    op_counts: Sequence[int] = (12_500, 25_000, 50_000, 100_000),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 2(d): sync share vs. number of concurrent operations (IPGEO).

    Paper: 16.2 % -> 62.1 % for Heart/SMART, 24.1 % -> 71.3 % for ART.
    """
    rows = []
    raw = {}
    for n_ops in op_counts:
        results = _matrix(("IPGEO",), MOTIVATION_ENGINES, n_keys, n_ops, seed)
        raw[f"IPGEO@{n_ops}"] = results["IPGEO"]
        row = [n_ops]
        for engine in MOTIVATION_ENGINES:
            row.append(100 * results["IPGEO"][engine].sync_share)
        rows.append(row)
    return ExperimentResult(
        "Fig. 2(d) - sync share vs #ops, IPGEO (%)",
        ["n_ops"] + list(MOTIVATION_ENGINES),
        rows,
        notes="paper: grows with op count, ART worst (24.1 % -> 71.3 %)",
        raw=raw,
    )


def fig2e_write_ratio(
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    write_ratios: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 2(e): baseline throughput vs write ratio (IPGEO).

    Paper: performance deteriorates rapidly as the write ratio grows.
    """
    rows = []
    raw = {}
    for ratio in write_ratios:
        results = _matrix(
            ("IPGEO",), MOTIVATION_ENGINES, n_keys, n_ops, seed, write_ratio=ratio
        )
        raw[f"IPGEO@w{ratio}"] = results["IPGEO"]
        row = [ratio]
        for engine in MOTIVATION_ENGINES:
            row.append(results["IPGEO"][engine].throughput_mops)
        rows.append(row)
    return ExperimentResult(
        "Fig. 2(e) - throughput vs write ratio, IPGEO (Mops/s)",
        ["write_ratio"] + list(MOTIVATION_ENGINES),
        rows,
        notes="paper: throughput collapses as writes (lock traffic) grow",
        raw=raw,
    )


# ----------------------------------------------------------------------
# Fig. 3 — operation distribution
# ----------------------------------------------------------------------

def fig3_distribution(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 3: per-prefix op histograms + the two observations.

    Paper: IPGEO peaks above 24 000 ops at prefix 0x67; >96.65 % of
    traversals touch 5 % of the nodes.
    """
    rows = []
    raw = {}
    for name in REALWORLD:
        workload = _workload(name, n_keys, n_ops, seed, None)
        hist = PrefixHistogram.from_operations(workload.operations)
        # Node-level concentration needs actual traversals: one ART run.
        results = _matrix((name,), ("ART",), n_keys, n_ops, seed)
        raw[name] = results[name]
        node_conc = concentration(
            results[name]["ART"].node_access_counts.values(), 0.05
        )
        prefix, count = hist.hottest
        rows.append(
            [
                name,
                f"0x{prefix:02X}",
                count,
                hist.skew_ratio(),
                100 * hist.top_share(16),
                100 * node_conc,
            ]
        )
    return ExperimentResult(
        "Fig. 3 - operation distribution over 8-bit prefixes",
        [
            "workload",
            "hot_prefix",
            "hot_ops",
            "peak/mean",
            "top16_prefix_share_%",
            "top5%_node_traversal_share_%",
        ],
        rows,
        notes=(
            "paper: IPGEO peak >24000 ops at 0x67; >96.65 % of traversals "
            "on 5 % of nodes"
        ),
        raw=raw,
    )


# ----------------------------------------------------------------------
# Table I — configuration
# ----------------------------------------------------------------------

def table1_config(n_keys: Optional[int] = None) -> ExperimentResult:
    """Table I: DCART parameters (optionally the scaled instance)."""
    config = DCARTConfig() if n_keys is None else scaled_dcart_config(n_keys)
    rows = [
        ["Compute units", f"1 x PCU, 1 x Dispatcher, {config.n_sous} x SOUs"],
        ["Scan_buffer", f"{config.scan_buffer_bytes // 1024} KB"],
        ["Bucket_buffer", f"{config.bucket_buffer_bytes // 1024} KB"],
        ["Shortcut_buffer", f"{config.shortcut_buffer_bytes // 1024} KB"],
        ["Tree_buffer", f"{config.tree_buffer_bytes // 1024} KB"],
        ["Clock", f"{config.costs.clock_hz / 1e6:.0f} MHz"],
        ["Batch size", f"{config.batch_size} ops"],
    ]
    return ExperimentResult(
        "Table I - DCART parameters", ["parameter", "value"], rows
    )


# ----------------------------------------------------------------------
# Figs. 7/8/9/11 — headline comparison
# ----------------------------------------------------------------------

def fig7_contentions(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 7: lock contentions per engine per workload.

    Paper: DCART-C/DCART at 3.2 %-19.7 % of the other solutions.
    """
    results = _matrix(WORKLOAD_NAMES, ALL_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        row = [workload]
        for engine in ALL_ENGINES:
            row.append(results[workload][engine].lock_contentions)
        dcart = results[workload]["DCART"].lock_contentions
        baseline_min = min(
            results[workload][e].lock_contentions
            for e in ("ART", "Heart", "SMART", "CuART")
        )
        row.append(100 * dcart / baseline_min if baseline_min else 0.0)
        rows.append(row)
    return ExperimentResult(
        "Fig. 7 - lock contentions",
        ["workload"] + list(ALL_ENGINES) + ["DCART/best_baseline_%"],
        rows,
        notes="paper: DCART(-C) at 3.2-19.7 % of the baselines",
        raw=results,
    )


def fig8_matches(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 8: partial-key matches per engine per workload.

    Paper bands (DCART as % of baseline): ART 3.2-5.7, SMART 6.5-14.3,
    CuART 8.8-15.9.
    """
    results = _matrix(WORKLOAD_NAMES, ALL_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        per = results[workload]
        dcart = per["DCART"].partial_key_matches
        row = [workload]
        for engine in ALL_ENGINES:
            row.append(per[engine].partial_key_matches)
        for baseline in ("ART", "SMART", "CuART"):
            base = per[baseline].partial_key_matches
            row.append(100 * dcart / base if base else 0.0)
        rows.append(row)
    return ExperimentResult(
        "Fig. 8 - partial-key matches",
        ["workload"]
        + list(ALL_ENGINES)
        + ["%of_ART", "%of_SMART", "%of_CuART"],
        rows,
        notes="paper: DCART at 3.2-5.7 % of ART, 6.5-14.3 % of SMART, 8.8-15.9 % of CuART",
        raw=results,
    )


def fig9_performance(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 9: execution time and DCART speedups.

    Paper bands: 123.8-151.7x vs ART, 35.9-44.2x vs SMART, 21.1-31.2x
    vs CuART; DCART-C only slightly outperforms the baselines.
    """
    results = _matrix(WORKLOAD_NAMES, ALL_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        per = results[workload]
        ratios = speedups(per)
        row = [workload]
        for engine in ALL_ENGINES:
            row.append(per[engine].elapsed_seconds * 1e3)
        row.extend(
            [ratios["ART"], ratios["SMART"], ratios["CuART"], ratios["DCART-C"]]
        )
        rows.append(row)
    spd_bands = {
        name: band(
            speedups(results[w])[name] for w in WORKLOAD_NAMES
        )
        for name in ("ART", "SMART", "CuART")
    }
    notes = (
        "measured bands: "
        + ", ".join(
            f"{n} {lo:.1f}x-{hi:.1f}x" for n, (lo, hi) in spd_bands.items()
        )
        + " | paper: ART 123.8-151.7x, SMART 35.9-44.2x, CuART 21.1-31.2x"
    )
    return ExperimentResult(
        "Fig. 9 - execution time (ms) and DCART speedups",
        ["workload"]
        + [f"{e}_ms" for e in ALL_ENGINES]
        + ["spd_vs_ART", "spd_vs_SMART", "spd_vs_CuART", "spd_vs_DCART-C"],
        rows,
        notes=notes,
        raw=results,
    )


def fig10_throughput_latency(
    n_keys: int = DEFAULT_KEYS,
    op_counts: Sequence[int] = (12_500, 25_000, 50_000, 100_000),
    seed: int = DEFAULT_SEED,
    workloads: Sequence[str] = REALWORLD,
) -> ExperimentResult:
    """Fig. 10: throughput vs P99 latency, varying the op count.

    Paper: DCART reaches both higher throughput and lower P99 latency
    than every baseline on the real-world workloads.
    """
    rows = []
    raw = {}
    for name in workloads:
        for n_ops in op_counts:
            results = _matrix((name,), ALL_ENGINES, n_keys, n_ops, seed)
            raw[f"{name}@{n_ops}"] = results[name]
            for engine in ALL_ENGINES:
                r = results[name][engine]
                rows.append(
                    [name, n_ops, engine, r.throughput_mops, r.p99_latency_us]
                )
    return ExperimentResult(
        "Fig. 10 - throughput vs P99 latency",
        ["workload", "n_ops", "engine", "Mops/s", "p99_us"],
        rows,
        notes="paper: DCART achieves higher throughput at lower P99",
        raw=raw,
    )


def fig11_energy(
    n_keys: int = DEFAULT_KEYS, n_ops: int = DEFAULT_OPS, seed: int = DEFAULT_SEED
) -> ExperimentResult:
    """Fig. 11: energy and DCART's savings.

    Paper bands: 315.1-493.5x vs ART, 92.7-148.9x vs SMART, 71.1-126.2x
    vs CuART, 48.1-97.6x vs DCART-C.
    """
    results = _matrix(WORKLOAD_NAMES, ALL_ENGINES, n_keys, n_ops, seed)
    rows = []
    for workload in WORKLOAD_NAMES:
        per = results[workload]
        savings = energy_savings(per)
        row = [workload]
        for engine in ALL_ENGINES:
            row.append(per[engine].energy_joules)
        row.extend(
            [savings["ART"], savings["SMART"], savings["CuART"], savings["DCART-C"]]
        )
        rows.append(row)
    return ExperimentResult(
        "Fig. 11 - energy (J) and DCART savings",
        ["workload"]
        + [f"{e}_J" for e in ALL_ENGINES]
        + ["sav_vs_ART", "sav_vs_SMART", "sav_vs_CuART", "sav_vs_DCART-C"],
        rows,
        notes=(
            "paper: ART 315.1-493.5x, SMART 92.7-148.9x, CuART 71.1-126.2x, "
            "DCART-C 48.1-97.6x"
        ),
        raw=results,
    )


# ----------------------------------------------------------------------
# Fig. 12 — sensitivity
# ----------------------------------------------------------------------

def fig12a_op_sensitivity(
    n_keys: int = DEFAULT_KEYS,
    op_counts: Sequence[int] = (12_500, 25_000, 50_000, 100_000),
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 12(a): IPGEO performance vs number of concurrent operations.

    Paper: DCART's advantage grows with the operation count.
    """
    rows = []
    raw = {}
    for n_ops in op_counts:
        results = _matrix(("IPGEO",), ALL_ENGINES, n_keys, n_ops, seed)
        raw[f"IPGEO@{n_ops}"] = results["IPGEO"]
        ratios = speedups(results["IPGEO"])
        row = [n_ops]
        for engine in ALL_ENGINES:
            row.append(results["IPGEO"][engine].elapsed_seconds * 1e3)
        row.append(ratios["SMART"])
        rows.append(row)
    return ExperimentResult(
        "Fig. 12(a) - execution time (ms) vs #ops, IPGEO",
        ["n_ops"] + [f"{e}_ms" for e in ALL_ENGINES] + ["spd_vs_SMART"],
        rows,
        notes="paper: DCART's speedup grows with the op count",
        raw=raw,
    )


def fig12b_mix_sensitivity(
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Fig. 12(b): IPGEO performance across mixes A-E.

    Paper: DCART's improvement grows as the write ratio grows.
    """
    rows = []
    raw = {}
    for mix_name in ("A", "B", "C", "D", "E"):
        ratio = MIXES[mix_name].write_ratio
        results = _matrix(
            ("IPGEO",), ALL_ENGINES, n_keys, n_ops, seed, write_ratio=ratio
        )
        raw[f"IPGEO@{mix_name}"] = results["IPGEO"]
        ratios = speedups(results["IPGEO"])
        row = [mix_name, ratio]
        for engine in ALL_ENGINES:
            row.append(results["IPGEO"][engine].elapsed_seconds * 1e3)
        row.append(ratios["SMART"])
        rows.append(row)
    return ExperimentResult(
        "Fig. 12(b) - execution time (ms) across mixes A-E, IPGEO",
        ["mix", "write_ratio"]
        + [f"{e}_ms" for e in ALL_ENGINES]
        + ["spd_vs_SMART"],
        rows,
        notes="paper: improvement grows with the write ratio",
        raw=raw,
    )


# ----------------------------------------------------------------------
# Ablations (beyond the paper's figures; §III design choices)
# ----------------------------------------------------------------------

ABLATIONS = {
    "DCART": {},
    "no-shortcuts": {"enable_shortcuts": False},
    "no-combining": {"enable_combining": False},
    "no-overlap": {"enable_overlap": False},
    "lru-tree-buffer": {"value_aware_tree_buffer": False},
}


def ablation(
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    seed: int = DEFAULT_SEED,
    workload_name: str = "IPGEO",
    batch_size: int = 4096,
) -> ExperimentResult:
    """Disable each §III design decision in turn and re-measure.

    Uses a smaller batch than Table I's default so a scaled-down run
    still spans many batches (the overlap ablation needs batch count).
    """
    workload = _workload(workload_name, n_keys, n_ops, seed, None)
    rows = []
    raw = {workload_name: {}}
    for label, overrides in ABLATIONS.items():
        config = scaled_dcart_config(
            n_keys,
            DCARTConfig(batch_size=batch_size, **overrides),
        )
        result = DcartAccelerator(config=config).run(workload)
        raw[workload_name][label] = result
        rows.append(
            [
                label,
                result.elapsed_seconds * 1e3,
                result.throughput_mops,
                result.partial_key_matches,
                result.lock_contentions,
                result.extra.get("tree_buffer_hit_rate", 0.0),
            ]
        )
    return ExperimentResult(
        f"Ablation - DCART design choices on {workload_name}",
        ["variant", "ms", "Mops/s", "matches", "contentions", "tree_buf_hit"],
        rows,
        notes="each row reverts one design decision of paper SIII",
        raw=raw,
    )
