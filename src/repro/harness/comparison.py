"""Cross-engine ratio computation (speedups, savings, match ratios)."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.engines.base import RunResult
from repro.errors import SimulationError


def speedups(
    per_engine: Dict[str, RunResult], reference: str = "DCART"
) -> Dict[str, float]:
    """Execution-time ratio of every engine to ``reference`` (Fig. 9).

    ``speedups(...)["ART"] == 130.0`` means DCART is 130x faster than ART.
    """
    if reference not in per_engine:
        raise SimulationError(f"no result for reference engine {reference!r}")
    base = per_engine[reference].elapsed_seconds
    if base <= 0:
        raise SimulationError(f"reference {reference!r} has no elapsed time")
    return {
        name: result.elapsed_seconds / base
        for name, result in per_engine.items()
        if name != reference
    }


def energy_savings(
    per_engine: Dict[str, RunResult], reference: str = "DCART"
) -> Dict[str, float]:
    """Energy ratio of every engine to ``reference`` (Fig. 11)."""
    if reference not in per_engine:
        raise SimulationError(f"no result for reference engine {reference!r}")
    base = per_engine[reference].energy_joules
    if base <= 0:
        raise SimulationError(f"reference {reference!r} has no energy")
    return {
        name: result.energy_joules / base
        for name, result in per_engine.items()
        if name != reference
    }


def ratio_table(
    per_engine: Dict[str, RunResult],
    metric: str,
    reference: str = "DCART",
) -> Dict[str, float]:
    """``reference``'s share of each engine's counter (Figs. 7 and 8).

    ``ratio_table(r, "partial_key_matches")["ART"] == 0.04`` reads "DCART
    performs 4 % of ART's partial-key matches", matching how the paper
    words its Fig. 7/8 claims.
    """
    if reference not in per_engine:
        raise SimulationError(f"no result for reference engine {reference!r}")
    base = getattr(per_engine[reference], metric)
    out = {}
    for name, result in per_engine.items():
        if name == reference:
            continue
        value = getattr(result, metric)
        out[name] = (base / value) if value else float("inf")
    return out


def band(values: Iterable[float]) -> Tuple[float, float]:
    """(min, max) over a collection — the 'A×–B×' bands the paper quotes."""
    items = list(values)
    if not items:
        raise SimulationError("band() of an empty collection")
    return min(items), max(items)
