"""Simulator-speed benchmarking and the perf-regression trajectory.

This module measures how fast the *simulator itself* runs — wall-clock
sim-ops/second, not the modelled hardware throughput — so hot-path
regressions are caught before they merge.  The canonical artefact is
``BENCH_speed.json`` at the repo root: an append-only trajectory of
samples, one per recorded invocation, each stamped with the git SHA and
a timestamp.  CI runs ``repro bench --quick --check`` and fails when any
engine's sim-ops/sec drops more than :data:`REGRESSION_THRESHOLD` below
the best previous entry of the same mode.

Two workload specs are defined:

* the **reference** spec — the ISSUE's 1 M-op reference workload,
  used for recorded full runs;
* the **quick** spec — a 100 k-op slice of the same distribution for
  CI, where a full run would dominate the job.

Regression comparison only ever compares entries of the same mode, so a
quick CI sample is never judged against a full local one.
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.harness.runner import default_engines
from repro.workloads import make_workload
from repro.workloads.ops import Workload

#: Fractional sim-ops/sec drop (vs the best prior same-mode entry) that
#: counts as a regression.  20 % leaves headroom for CI-runner noise.
REGRESSION_THRESHOLD = 0.20

#: The ISSUE's reference workload: 1 M ops, Zipf 0.99, 16 SOUs.
REFERENCE_SPEC = {
    "name": "IPGEO",
    "n_keys": 100_000,
    "n_ops": 1_000_000,
    "seed": 42,
    "op_skew": 0.99,
}

#: CI-sized slice of the same distribution.
QUICK_SPEC = {
    "name": "IPGEO",
    "n_keys": 20_000,
    "n_ops": 100_000,
    "seed": 42,
    "op_skew": 0.99,
}

#: Engines benchmarked by default: the pure-Python traversal engine and
#: the full accelerator model (the two extremes of the hot path).
DEFAULT_BENCH_ENGINES = ("ART", "DCART")

BENCH_FILENAME = "BENCH_speed.json"


@dataclass(frozen=True)
class BenchSample:
    """One engine's measurement inside one bench entry."""

    engine: str
    sim_ops_per_sec: float
    wall_seconds: float
    peak_rss_bytes: int
    sim_throughput_mops: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "sim_ops_per_sec": self.sim_ops_per_sec,
            "wall_seconds": self.wall_seconds,
            "peak_rss_bytes": self.peak_rss_bytes,
            "sim_throughput_mops": self.sim_throughput_mops,
        }


def reset_peak_rss() -> None:
    """Reset the kernel's peak-RSS watermark for this process.

    Writing ``"5"`` to ``/proc/self/clear_refs`` zeroes ``VmHWM``, so
    the next :func:`peak_rss_bytes` reports the peak *since this reset*
    rather than the process-lifetime high-water mark — without it every
    engine benchmarked after the first inherits its predecessors' peak.
    A no-op where the procfs knob does not exist (macOS, restricted
    containers); there the lifetime fallback still applies.
    """
    try:
        with open("/proc/self/clear_refs", "w") as handle:  # reprolint: disable=DUR01 -- procfs knob, not durable state; there is no file to tear
            handle.write("5")
    except OSError:  # pragma: no cover - non-linux / restricted
        pass


def peak_rss_bytes() -> int:
    """Peak resident set size in bytes since the last reset.

    Prefers ``VmHWM`` from ``/proc/self/status`` (resettable via
    :func:`reset_peak_rss`, so each engine's sample is its own); falls
    back to ``ru_maxrss`` where procfs is unavailable — a lifetime
    number that can only overstate.  ``ru_maxrss`` is kilobytes on
    Linux and bytes on macOS; normalise to bytes.
    """
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover
        pass
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":  # pragma: no cover - linux CI
        return maxrss
    return maxrss * 1024


def git_sha(repo_dir: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a checkout.

    A ``-dirty`` suffix marks measurements taken with uncommitted
    changes, so a trajectory entry never silently claims to describe a
    commit whose code it did not actually run.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:  # pragma: no cover - git missing
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    sha = out.stdout.strip()
    if status.returncode == 0 and status.stdout.strip():
        sha += "-dirty"
    return sha


def utc_stamp() -> str:
    """The current UTC time as an ISO-8601 string.

    The one sanctioned wall-clock read for harness stamping (this module
    is DET02's whitelisted home for host-side time): trajectory entries
    and campaign-store rows both stamp through here, and deterministic
    modes (``--no-stamp``) simply never call it.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def bench_workload(
    quick: bool = False, cache_dir: Optional[str] = None
) -> Workload:
    """Build (or load from ``cache_dir``) the benchmark workload.

    The cache keys on the spec values, so a stale cache from a different
    spec can never be replayed silently.
    """
    spec = QUICK_SPEC if quick else REFERENCE_SPEC
    if cache_dir is not None:
        from repro.workloads.trace import load_workload, save_workload

        tag = "quick" if quick else "full"
        stamp = "-".join(
            f"{key}={spec[key]}" for key in sorted(spec)
        ).replace("/", "_")
        path = os.path.join(cache_dir, f"bench-{tag}-{stamp}.jsonl")
        if os.path.exists(path):
            return load_workload(path)
        workload = make_workload(**spec)
        os.makedirs(cache_dir, exist_ok=True)
        save_workload(workload, path)
        return workload
    return make_workload(**spec)


def bench_engine(
    engine_name: str,
    workload: Workload,
    n_keys: int,
    repeats: int = 1,
) -> BenchSample:
    """Time one engine's timed phase on a prebuilt tree.

    Tree construction is excluded — the regression gate watches the
    per-operation hot path, and build time would dilute it.

    ``repeats`` runs the timed phase that many times and keeps the
    fastest wall time (best-of-N).  On shared or cgroup-throttled
    machines individual wall times can swing far more than any real
    code change; the minimum is the standard robust estimator because
    only slowdowns (scheduler preemption, throttling) perturb a run —
    nothing makes code run faster than it can.
    """
    engine = default_engines(n_keys, include=[engine_name])[0]
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1: {repeats}")
    reset_peak_rss()
    wall = None
    result = None
    for _ in range(repeats):
        tree = engine.build_tree(workload)
        start = time.perf_counter()
        result = engine.run(workload, tree=tree)
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall = elapsed
    n_ops = len(workload.operations)
    return BenchSample(
        engine=engine_name,
        sim_ops_per_sec=n_ops / wall if wall > 0 else 0.0,
        wall_seconds=wall,
        peak_rss_bytes=peak_rss_bytes(),
        sim_throughput_mops=result.throughput_mops,
    )


def run_bench(
    engines: Iterable[str] = DEFAULT_BENCH_ENGINES,
    quick: bool = False,
    cache_dir: Optional[str] = None,
    repeats: int = 1,
) -> Dict[str, object]:
    """Benchmark ``engines`` on the reference (or quick) workload.

    Returns one trajectory entry: git SHA, timestamp, mode, workload
    spec, and a per-engine sample dict.
    """
    spec = QUICK_SPEC if quick else REFERENCE_SPEC
    workload = bench_workload(quick=quick, cache_dir=cache_dir)
    samples = {}
    for name in engines:
        samples[name] = bench_engine(
            name, workload, spec["n_keys"], repeats=repeats
        ).to_dict()
    return {
        "git_sha": git_sha(),
        "timestamp": utc_stamp(),
        "mode": "quick" if quick else "full",
        "workload": dict(spec),
        "engines": samples,
    }


def load_trajectory(path: str) -> Dict[str, object]:
    """Read ``BENCH_speed.json`` (empty trajectory if absent).

    A torn or otherwise undecodable file surfaces as
    :class:`~repro.errors.ConfigError`, not a raw ``JSONDecodeError``
    traceback — the CLI turns it into a one-line message and exit 2, and
    the fix path (delete or restore the file) is the same either way.
    """
    if not os.path.exists(path):
        return {"schema": 1, "history": []}
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"{path} is corrupt (not valid JSON: {exc}); delete it or "
                f"restore it from version control"
            ) from exc
    if not isinstance(doc, dict) or "history" not in doc:
        raise ConfigError(f"{path} is not a bench trajectory file")
    if not isinstance(doc["history"], list):
        raise ConfigError(f"{path} history is not a list")
    return doc


def append_entry(path: str, entry: Dict[str, object]) -> None:
    """Append one entry to the trajectory file (atomic rewrite).

    Follows the fsync-before-rename protocol (reprolint DUR01): the
    temp file is flushed and fsynced before ``os.replace`` publishes it,
    so a crash leaves either the old complete trajectory or the new one
    — never a torn file at the final name.
    """
    doc = load_trajectory(path)
    doc["history"].append(entry)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def check_regression(
    entry: Dict[str, object],
    history: List[Dict[str, object]],
    threshold: float = REGRESSION_THRESHOLD,
) -> Tuple[bool, List[str]]:
    """Compare ``entry`` against the best same-mode history entries.

    For each engine in ``entry``, find the best prior sim-ops/sec among
    history entries of the same mode that measured that engine; flag a
    regression when the new number is more than ``threshold`` below it.
    Returns ``(ok, messages)`` where messages describe each comparison.

    History entries from an older schema — or failed samples that never
    recorded a rate — are skipped with a message rather than crashing
    the gate mid-check: a decade-old trajectory must never be able to
    take down today's CI run.
    """
    mode = entry["mode"]
    messages: List[str] = []
    ok = True
    for engine, sample in entry["engines"].items():
        best = None
        skipped = 0
        for prior in history:
            if not isinstance(prior, dict) or prior.get("mode") != mode:
                continue
            engines = prior.get("engines")
            if not isinstance(engines, dict):
                continue
            prior_sample = engines.get(engine)
            if prior_sample is None:
                continue
            rate = (
                prior_sample.get("sim_ops_per_sec")
                if isinstance(prior_sample, dict)
                else None
            )
            if not isinstance(rate, (int, float)):
                skipped += 1
                continue
            if best is None or rate > best:
                best = rate
        if skipped:
            messages.append(
                f"{engine}: skipped {skipped} history "
                f"entr{'y' if skipped == 1 else 'ies'} without "
                f"sim_ops_per_sec (older schema or failed sample)"
            )
        new_rate = sample["sim_ops_per_sec"]
        if best is None:
            messages.append(
                f"{engine}: {new_rate:,.0f} sim-ops/s (no {mode} baseline)"
            )
            continue
        ratio = new_rate / best if best > 0 else float("inf")
        line = (
            f"{engine}: {new_rate:,.0f} sim-ops/s vs best {best:,.0f} "
            f"({ratio:.2f}x)"
        )
        if ratio < 1.0 - threshold:
            ok = False
            line += f"  REGRESSION (> {threshold:.0%} below best)"
        messages.append(line)
    return ok, messages


def format_entry(entry: Dict[str, object]) -> str:
    """Human-readable rendering of one trajectory entry."""
    lines = [
        f"bench @ {entry['git_sha'][:12]} ({entry['mode']}, "
        f"{entry['timestamp']})"
    ]
    spec = entry["workload"]
    lines.append(
        f"  workload {spec['name']}: {spec['n_keys']:,} keys, "
        f"{spec['n_ops']:,} ops, seed {spec['seed']}, "
        f"skew {spec['op_skew']}"
    )
    for engine, sample in entry["engines"].items():
        lines.append(
            f"  {engine:8s} {sample['sim_ops_per_sec']:>12,.0f} sim-ops/s  "
            f"{sample['wall_seconds']:8.2f} s wall  "
            f"{sample['peak_rss_bytes'] / 2**20:8.0f} MB peak RSS  "
            f"({sample['sim_throughput_mops']:.2f} modelled Mops/s)"
        )
    return "\n".join(lines)
