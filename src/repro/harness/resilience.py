"""Graceful-degradation and crash-recovery experiments (chaos harness).

Two contracts a production accelerator must honour:

* **Degradation** — unit failures cost *throughput*, never
  *correctness*.  :func:`chaos_run` executes one faulted DCART run,
  re-validates every ART invariant on the final tree, and compares
  against the healthy baseline; :func:`degradation_curve` sweeps the
  number of fail-stopped SOUs (0..15) against the *proportional* limit
  (``n_sous / survivors``); graceful means within 2x of proportional.
* **Durability** — a crash costs the *uncommitted tail*, never the
  committed prefix.  :func:`crash_recover_verify` kills one durable run
  at a seeded point of the WAL/checkpoint/replay protocol, recovers,
  and proves the rebuilt tree (a) passes the standalone invariant
  validator and (b) exactly equals the committed-prefix reference —
  the bulk load plus every *committed* batch replayed in order.
  :func:`crash_recovery_campaign` sweeps that over many seeds (the
  acceptance loop: >= 50 random crash points, all exact).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from random import Random
from typing import Dict, Optional

from repro.art.tree import AdaptiveRadixTree
from repro.art.validate import ValidationReport, validate_tree
from repro.core.accelerator import DcartAccelerator
from repro.core.config import DCARTConfig
from repro.durability import DurabilityManager, recover
from repro.durability.manager import CRASH_POINTS
from repro.engines.base import RunResult
from repro.errors import ConfigError, KeyNotFoundError, SimulatedCrash
from repro.faults import CrashFault, FaultInjector, FaultSchedule, Watchdog
from repro.harness.experiments import ExperimentResult
from repro.harness.runner import scaled_dcart_config
from repro.log import get_logger
from repro.workloads import make_workload
from repro.workloads.ops import OpKind, Workload

LOG = get_logger("resilience")

#: Default chaos scale: small enough for CI, large enough for >= 8
#: batches so mid-run faults land in a live pipeline.
DEFAULT_KEYS = 2_000
DEFAULT_OPS = 20_000
DEFAULT_BATCH_SIZE = 2_048

#: Graceful-degradation bound: observed slowdown may not exceed this
#: multiple of the proportional capacity loss.
GRACEFUL_FACTOR = 2.0


def chaos_config(
    n_keys: int = DEFAULT_KEYS, batch_size: int = DEFAULT_BATCH_SIZE
) -> DCARTConfig:
    """Cache-scaled DCART config with a chaos-friendly batch size."""
    return scaled_dcart_config(n_keys, DCARTConfig(batch_size=batch_size))


@dataclass
class ChaosOutcome:
    """One faulted run, its healthy baseline, and the correctness oracle."""

    schedule: FaultSchedule
    result: RunResult
    baseline: RunResult
    validation: ValidationReport
    n_sous: int

    @property
    def n_failed(self) -> int:
        return len(self.result.extra.get("failed_sous", ()))

    @property
    def degradation(self) -> float:
        """Observed slowdown: healthy throughput over faulted throughput.

        Vacuous comparisons are 1.0, not a division blow-up: an empty
        workload (both runs at zero throughput) did not degrade, it
        measured nothing.  ``inf`` is reserved for a genuine stall —
        the healthy machine made progress and the faulted one did not.
        """
        if self.baseline.throughput_mops == 0:
            return 1.0
        if self.result.throughput_mops == 0:
            return float("inf")
        return self.baseline.throughput_mops / self.result.throughput_mops

    @property
    def proportional_loss(self) -> float:
        """Slowdown of a perfectly rebalanced machine losing those units."""
        if self.n_sous <= 0:
            return 1.0
        survivors = self.n_sous - self.n_failed
        if survivors <= 0:
            return float("inf")
        return self.n_sous / survivors

    @property
    def graceful(self) -> bool:
        """Within the 2x-of-proportional degradation bound, and correct."""
        return (
            self.validation.ok
            and self.degradation <= GRACEFUL_FACTOR * self.proportional_loss
        )

    def summary(self) -> str:
        return (
            f"chaos: {self.n_failed}/{self.n_sous} SOUs failed, "
            f"{self.result.throughput_mops:.2f} Mops/s "
            f"(healthy {self.baseline.throughput_mops:.2f}), "
            f"degradation {self.degradation:.2f}x "
            f"(proportional {self.proportional_loss:.2f}x), "
            f"tree {self.validation.summary()}"
        )


def chaos_run(
    n_failed: int = 0,
    seed: int = 1,
    workload_name: str = "IPGEO",
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    schedule: Optional[FaultSchedule] = None,
    config: Optional[DCARTConfig] = None,
    watchdog: Optional[Watchdog] = None,
    workload=None,
    baseline: Optional[RunResult] = None,
) -> ChaosOutcome:
    """Run DCART under one fault schedule and validate the outcome.

    With no explicit ``schedule``, fail-stops ``n_failed`` seed-chosen
    SOUs at batch 0.  ``workload``/``baseline``/``config`` may be passed
    in to share across a sweep; anything omitted is built here.
    A :class:`~repro.errors.FaultError` (watchdog, all units dead)
    propagates to the caller — that *is* the experiment's result for
    non-survivable scenarios.
    """
    if config is None:
        config = chaos_config(n_keys)
    if workload is None:
        workload = make_workload(
            workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed
        )
    if schedule is None:
        schedule = FaultSchedule.fail_sous(
            n_failed, seed, n_sous=config.n_sous, at_batch=0
        )
    if baseline is None:
        baseline = DcartAccelerator(config=config).run(workload)

    # n_shards=0: a single-machine chaos run must refuse a schedule
    # carrying cluster-level events rather than silently ignore them.
    injector = FaultInjector(
        schedule.validate_sous(config.n_sous).validate_shards(0),
        watchdog=watchdog,
    )
    accelerator = DcartAccelerator(config=config, injector=injector)
    tree = accelerator.build_tree(workload)
    LOG.info("chaos run starting: %s", schedule.describe())
    result = accelerator.run(workload, tree=tree)
    validation = validate_tree(tree)
    outcome = ChaosOutcome(
        schedule=schedule,
        result=result,
        baseline=baseline,
        validation=validation,
        n_sous=config.n_sous,
    )
    LOG.info("%s", outcome.summary())
    return outcome


def degradation_curve(
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    seed: int = 1,
    workload_name: str = "IPGEO",
    max_failed: Optional[int] = None,
) -> ExperimentResult:
    """Throughput and p99 latency vs. number of fail-stopped SOUs.

    The headline resilience figure: one row per failure count from 0 to
    ``n_sous - 1``, the whole curve sharing one workload and one healthy
    baseline so every difference is the fault model's doing.
    """
    config = chaos_config(n_keys)
    if max_failed is None:
        max_failed = config.n_sous - 1
    workload = make_workload(workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed)
    baseline = DcartAccelerator(config=config).run(workload)

    rows = []
    raw: dict = {workload_name: {}}
    for n_failed in range(0, max_failed + 1):
        outcome = chaos_run(
            n_failed=n_failed,
            seed=seed,
            config=config,
            workload=workload,
            baseline=baseline,
        )
        raw[workload_name][f"failed={n_failed}"] = outcome.result
        rows.append(
            [
                n_failed,
                outcome.result.throughput_mops,
                outcome.result.p99_latency_us,
                outcome.degradation,
                outcome.proportional_loss,
                "yes" if outcome.graceful else "NO",
                "ok" if outcome.validation.ok else "BROKEN",
            ]
        )
    return ExperimentResult(
        f"Resilience - degradation vs. failed SOUs ({workload_name})",
        [
            "failed SOUs",
            "Mops/s",
            "p99 (us)",
            "degradation (x)",
            "proportional (x)",
            "graceful",
            "tree",
        ],
        rows,
        notes=(
            "graceful = degradation within "
            f"{GRACEFUL_FACTOR:g}x of the proportional capacity loss; "
            "tree = ART invariant validator verdict on the final tree"
        ),
        raw=raw,
    )


def cluster_degradation_curve(
    n_shards: int = 8,
    max_failed: Optional[int] = None,
    seed: int = 1,
    workload_name: str = "IPGEO",
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    at_batch: int = 2,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ExperimentResult:
    """Cluster throughput vs. number of fail-stopped shard primaries.

    The cluster counterpart of :func:`degradation_curve`: one row per
    failure count, every faulted run killing seed-chosen primaries at
    ``at_batch`` mid-traffic.  Each dead primary fails over to its
    replica, so the columns to watch are the *recovery* ones — worst
    RTO and hinted-handoff volume — alongside the throughput hit.  All
    rows share one workload; every primary tree is re-validated after
    the run (a failover must never cost correctness).
    """
    from repro.cluster import ClusterConfig, ClusterCoordinator

    if max_failed is None:
        max_failed = n_shards // 2
    n_batches = -(-n_ops // batch_size)
    if at_batch >= n_batches:
        raise ConfigError(
            f"fault batch {at_batch} is past the run "
            f"({n_batches} batches of {batch_size}); the curve would "
            "silently measure an unfaulted cluster"
        )
    workload = make_workload(
        workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed
    )
    config = chaos_config(n_keys, batch_size=batch_size)
    cluster = ClusterConfig(n_shards=n_shards, replicas=1, seed=seed)

    rows = []
    raw: dict = {workload_name: {}}
    healthy_mops = 0.0
    for n_failed in range(0, max_failed + 1):
        schedule = FaultSchedule.fail_shards(
            n_failed, seed, n_shards=n_shards, at_batch=at_batch
        )
        coordinator = ClusterCoordinator(
            workload, cluster=cluster, accel_config=config,
            schedule=schedule,
        )
        report = coordinator.run(batch_size=batch_size)
        coordinator.validate_trees()
        mops = float(report["throughput_mops"])  # type: ignore[arg-type]
        if n_failed == 0:
            healthy_mops = mops
        failovers = report["failovers"]
        worst_rto = max(
            (int(f["rto_cycles"]) for f in failovers), default=0
        )
        handoff = sum(int(f["handoff_ops"]) for f in failovers)
        raw[workload_name][f"failed={n_failed}"] = report
        rows.append(
            [
                n_failed,
                mops,
                healthy_mops / mops if mops > 0 else float("inf"),
                len(failovers),
                worst_rto,
                handoff,
                "ok",  # validate_trees() above raises otherwise
            ]
        )
    return ExperimentResult(
        f"Resilience - cluster degradation vs. failed shards "
        f"({workload_name}, {n_shards} shards)",
        [
            "failed shards",
            "Mops/s",
            "degradation (x)",
            "failovers",
            "worst RTO (cycles)",
            "handoff ops",
            "trees",
        ],
        rows,
        notes=(
            "each dead primary is detected by missed heartbeats and "
            "fails over to its replica (promotion + WAL-tail catch-up "
            "+ hinted handoff); RTO = detection-to-recovery in cluster "
            "cycles; trees = ART invariant validator over every "
            "surviving primary"
        ),
        raw=raw,
    )


# ---------------------------------------------------------------------------
# crash – recover – validate
# ---------------------------------------------------------------------------

#: The full kill-point matrix the campaign samples from: every WAL and
#: checkpoint protocol step, plus a crash *during recovery replay*.
CRASH_MATRIX = CRASH_POINTS + ("replay",)


def committed_prefix_tree(
    workload: Workload, batch_size: int, committed_through: int
) -> AdaptiveRadixTree:
    """The reference oracle: bulk load + committed batches, sequentially.

    This is what recovery must reconstruct *exactly* (same key set, same
    values): the loaded keys plus every mutating op of batches
    ``0..committed_through`` applied in arrival order.  Per-key order is
    preserved by the PCU's combining (all ops on one key land in one
    bucket, in order), so the sequential replay and the accelerator's
    bucketed execution agree on the final state.
    """
    tree = AdaptiveRadixTree()
    for position, key in enumerate(workload.loaded_keys):
        tree.insert(key, position)
    for batch_index, batch in enumerate(workload.operations.batches(batch_size)):
        if batch_index > committed_through:
            break
        for op in batch:
            if op.kind is OpKind.WRITE:
                tree.upsert(op.key, op.value)
            elif op.kind is OpKind.DELETE:
                try:
                    tree.delete(op.key)
                except KeyNotFoundError:
                    pass
    return tree


@dataclass
class CrashRecoveryOutcome:
    """One crash–recover–validate trial."""

    seed: int
    crash_point: str
    crash_batch: int
    crashed: bool
    committed_through: int
    recovered_keys: int
    batches_replayed: int
    ops_replayed: int
    torn_tail_detected: bool
    checkpoints_skipped: int
    uncommitted_ops_skipped: int
    validation: ValidationReport
    #: Recovered tree's (key, value) set exactly equals the reference's.
    state_matches: bool
    extra: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Recovery correct: invariants hold AND state is exact."""
        return self.crashed and self.validation.ok and self.state_matches

    def summary(self) -> str:
        verdict = "EXACT" if self.state_matches else "DIVERGED"
        return (
            f"crash[{self.crash_point}@batch {self.crash_batch}, seed "
            f"{self.seed}]: recovered {self.recovered_keys} keys "
            f"(committed through {self.committed_through}, "
            f"{self.ops_replayed} ops replayed, "
            f"{self.uncommitted_ops_skipped} uncommitted skipped), "
            f"tree {self.validation.summary()}, state {verdict}"
        )


def crash_recover_verify(
    seed: int = 1,
    directory: Optional[str] = None,
    crash_point: Optional[str] = None,
    crash_batch: Optional[int] = None,
    workload_name: str = "IPGEO",
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    checkpoint_every: int = 3,
) -> CrashRecoveryOutcome:
    """Kill one durable run at a seeded crash point, recover, verify.

    With ``crash_point``/``crash_batch`` omitted they are drawn from the
    seed (point from :data:`CRASH_MATRIX`, batch uniformly over the
    run).  The ``replay`` point lets the run complete, then crashes the
    *first recovery* mid-replay and recovers again — proving recovery is
    idempotent over unchanged files.
    """
    rng = Random(seed)
    workload = make_workload(workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed)
    config = chaos_config(n_keys)
    n_batches = -(-n_ops // config.batch_size)
    point = crash_point if crash_point is not None else rng.choice(CRASH_MATRIX)
    batch = (
        crash_batch if crash_batch is not None else rng.randrange(max(1, n_batches))
    )
    if directory is None:
        directory = tempfile.mkdtemp(prefix="dcart-crash-")

    durability = DurabilityManager(directory, checkpoint_every=checkpoint_every)
    injector = None
    if point != "replay":
        schedule = FaultSchedule(
            seed=seed, events=(CrashFault(batch, point, rng.randrange(1024)),)
        )
        injector = FaultInjector(schedule)
    accelerator = DcartAccelerator(
        config=config, injector=injector, durability=durability
    )
    tree = accelerator.build_tree(workload)

    crashed = False
    try:
        accelerator.run(workload, tree=tree)
        crashed = point == "replay"  # a replay crash happens post-run
    except SimulatedCrash as exc:
        crashed = True
        LOG.info("machine killed: %s", exc)
    finally:
        durability.close()

    if point == "replay":
        # Kill the first recovery attempt mid-replay, then go again: the
        # second pass must see byte-identical files (replay writes
        # nothing) and succeed.
        try:
            recover(directory, crash_at_op=rng.randrange(1, 64))
        except SimulatedCrash:
            pass
    recovery = recover(directory)

    reference = committed_prefix_tree(
        workload, config.batch_size, recovery.committed_through
    )
    state_matches = dict(recovery.tree.items()) == dict(reference.items())

    outcome = CrashRecoveryOutcome(
        seed=seed,
        crash_point=point,
        crash_batch=batch,
        crashed=crashed,
        committed_through=recovery.committed_through,
        recovered_keys=len(recovery.tree),
        batches_replayed=recovery.batches_replayed,
        ops_replayed=recovery.ops_replayed,
        torn_tail_detected=recovery.wal_torn,
        checkpoints_skipped=len(recovery.checkpoints_skipped),
        uncommitted_ops_skipped=recovery.uncommitted_ops_skipped,
        validation=recovery.validation,
        state_matches=state_matches,
    )
    LOG.info("%s", outcome.summary())
    return outcome


def crash_recovery_campaign(
    n_trials: int = 50,
    seed: int = 1,
    workload_name: str = "IPGEO",
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    checkpoint_every: int = 3,
) -> ExperimentResult:
    """The seeded crash–recover–validate loop (acceptance: all EXACT).

    Each trial gets its own seed (``seed + i``), its own temp directory,
    and a kill point drawn from the full matrix.  The rendered table is
    the durability counterpart of the degradation curve: one row per
    crash, and the verdict columns must read ``ok`` / ``EXACT`` on every
    single one.
    """
    rows = []
    all_ok = True
    for trial in range(n_trials):
        outcome = crash_recover_verify(
            seed=seed + trial,
            workload_name=workload_name,
            n_keys=n_keys,
            n_ops=n_ops,
            checkpoint_every=checkpoint_every,
        )
        all_ok = all_ok and outcome.ok
        rows.append(
            [
                outcome.seed,
                outcome.crash_point,
                outcome.crash_batch,
                outcome.committed_through,
                outcome.ops_replayed,
                outcome.uncommitted_ops_skipped,
                "yes" if outcome.torn_tail_detected else "no",
                outcome.checkpoints_skipped,
                "ok" if outcome.validation.ok else "BROKEN",
                "EXACT" if outcome.state_matches else "DIVERGED",
            ]
        )
    result = ExperimentResult(
        f"Durability - crash/recover/validate x{n_trials} ({workload_name})",
        [
            "seed",
            "crash point",
            "batch",
            "committed",
            "replayed ops",
            "skipped ops",
            "torn tail",
            "ckpts skipped",
            "tree",
            "state",
        ],
        rows,
        notes=(
            "state EXACT = recovered tree's key/value set equals the "
            "committed-prefix reference; torn trailing WAL records are "
            "CRC-detected and skipped, never applied"
        ),
    )
    result.raw = {"all_ok": all_ok}
    return result
