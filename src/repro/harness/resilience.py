"""Graceful-degradation experiments (the chaos harness's headline curve).

The contract a fault-tolerant accelerator must honour: unit failures
cost *throughput*, never *correctness*.  :func:`chaos_run` executes one
faulted DCART run, re-validates every ART invariant on the final tree,
and compares against the healthy baseline; :func:`degradation_curve`
sweeps the number of fail-stopped SOUs (0..15) and reports throughput,
p99 latency, and the degradation factor next to the *proportional*
limit — ``n_sous / survivors``, what a perfectly rebalanced machine
would lose.  Graceful means staying within 2x of proportional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.art.validate import ValidationReport, validate_tree
from repro.core.accelerator import DcartAccelerator
from repro.core.config import DCARTConfig
from repro.engines.base import RunResult
from repro.faults import FaultInjector, FaultSchedule, Watchdog
from repro.harness.experiments import ExperimentResult
from repro.harness.runner import scaled_dcart_config
from repro.log import get_logger
from repro.workloads import make_workload

LOG = get_logger("resilience")

#: Default chaos scale: small enough for CI, large enough for >= 8
#: batches so mid-run faults land in a live pipeline.
DEFAULT_KEYS = 2_000
DEFAULT_OPS = 20_000
DEFAULT_BATCH_SIZE = 2_048

#: Graceful-degradation bound: observed slowdown may not exceed this
#: multiple of the proportional capacity loss.
GRACEFUL_FACTOR = 2.0


def chaos_config(
    n_keys: int = DEFAULT_KEYS, batch_size: int = DEFAULT_BATCH_SIZE
) -> DCARTConfig:
    """Cache-scaled DCART config with a chaos-friendly batch size."""
    return scaled_dcart_config(n_keys, DCARTConfig(batch_size=batch_size))


@dataclass
class ChaosOutcome:
    """One faulted run, its healthy baseline, and the correctness oracle."""

    schedule: FaultSchedule
    result: RunResult
    baseline: RunResult
    validation: ValidationReport
    n_sous: int

    @property
    def n_failed(self) -> int:
        return len(self.result.extra.get("failed_sous", ()))

    @property
    def degradation(self) -> float:
        """Observed slowdown: healthy throughput over faulted throughput."""
        if self.result.throughput_mops == 0:
            return float("inf")
        return self.baseline.throughput_mops / self.result.throughput_mops

    @property
    def proportional_loss(self) -> float:
        """Slowdown of a perfectly rebalanced machine losing those units."""
        survivors = self.n_sous - self.n_failed
        if survivors <= 0:
            return float("inf")
        return self.n_sous / survivors

    @property
    def graceful(self) -> bool:
        """Within the 2x-of-proportional degradation bound, and correct."""
        return (
            self.validation.ok
            and self.degradation <= GRACEFUL_FACTOR * self.proportional_loss
        )

    def summary(self) -> str:
        return (
            f"chaos: {self.n_failed}/{self.n_sous} SOUs failed, "
            f"{self.result.throughput_mops:.2f} Mops/s "
            f"(healthy {self.baseline.throughput_mops:.2f}), "
            f"degradation {self.degradation:.2f}x "
            f"(proportional {self.proportional_loss:.2f}x), "
            f"tree {self.validation.summary()}"
        )


def chaos_run(
    n_failed: int = 0,
    seed: int = 1,
    workload_name: str = "IPGEO",
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    schedule: Optional[FaultSchedule] = None,
    config: Optional[DCARTConfig] = None,
    watchdog: Optional[Watchdog] = None,
    workload=None,
    baseline: Optional[RunResult] = None,
) -> ChaosOutcome:
    """Run DCART under one fault schedule and validate the outcome.

    With no explicit ``schedule``, fail-stops ``n_failed`` seed-chosen
    SOUs at batch 0.  ``workload``/``baseline``/``config`` may be passed
    in to share across a sweep; anything omitted is built here.
    A :class:`~repro.errors.FaultError` (watchdog, all units dead)
    propagates to the caller — that *is* the experiment's result for
    non-survivable scenarios.
    """
    if config is None:
        config = chaos_config(n_keys)
    if workload is None:
        workload = make_workload(
            workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed
        )
    if schedule is None:
        schedule = FaultSchedule.fail_sous(
            n_failed, seed, n_sous=config.n_sous, at_batch=0
        )
    if baseline is None:
        baseline = DcartAccelerator(config=config).run(workload)

    injector = FaultInjector(schedule, watchdog=watchdog)
    accelerator = DcartAccelerator(config=config, injector=injector)
    tree = accelerator.build_tree(workload)
    LOG.info("chaos run starting: %s", schedule.describe())
    result = accelerator.run(workload, tree=tree)
    validation = validate_tree(tree)
    outcome = ChaosOutcome(
        schedule=schedule,
        result=result,
        baseline=baseline,
        validation=validation,
        n_sous=config.n_sous,
    )
    LOG.info("%s", outcome.summary())
    return outcome


def degradation_curve(
    n_keys: int = DEFAULT_KEYS,
    n_ops: int = DEFAULT_OPS,
    seed: int = 1,
    workload_name: str = "IPGEO",
    max_failed: Optional[int] = None,
) -> ExperimentResult:
    """Throughput and p99 latency vs. number of fail-stopped SOUs.

    The headline resilience figure: one row per failure count from 0 to
    ``n_sous - 1``, the whole curve sharing one workload and one healthy
    baseline so every difference is the fault model's doing.
    """
    config = chaos_config(n_keys)
    if max_failed is None:
        max_failed = config.n_sous - 1
    workload = make_workload(workload_name, n_keys=n_keys, n_ops=n_ops, seed=seed)
    baseline = DcartAccelerator(config=config).run(workload)

    rows = []
    raw: dict = {workload_name: {}}
    for n_failed in range(0, max_failed + 1):
        outcome = chaos_run(
            n_failed=n_failed,
            seed=seed,
            config=config,
            workload=workload,
            baseline=baseline,
        )
        raw[workload_name][f"failed={n_failed}"] = outcome.result
        rows.append(
            [
                n_failed,
                outcome.result.throughput_mops,
                outcome.result.p99_latency_us,
                outcome.degradation,
                outcome.proportional_loss,
                "yes" if outcome.graceful else "NO",
                "ok" if outcome.validation.ok else "BROKEN",
            ]
        )
    return ExperimentResult(
        f"Resilience - degradation vs. failed SOUs ({workload_name})",
        [
            "failed SOUs",
            "Mops/s",
            "p99 (us)",
            "degradation (x)",
            "proportional (x)",
            "graceful",
            "tree",
        ],
        rows,
        notes=(
            "graceful = degradation within "
            f"{GRACEFUL_FACTOR:g}x of the proportional capacity loss; "
            "tree = ART invariant validator verdict on the final tree"
        ),
        raw=raw,
    )
