"""Parallel sweep runner: fan (engine, workload, seed) cells over processes.

Experiment grids are embarrassingly parallel — each cell builds its own
workload and tree from its own seed — so the runner uses a
``ProcessPoolExecutor`` with one task per cell.  Determinism is kept by
construction:

* **per-cell seeding** — a cell is a frozen :class:`SweepCell` value and
  the worker derives *everything* (workload, tree, engine) from it; no
  state crosses cells and nothing depends on scheduling order;
* **ordered collection** — results come back via ``Executor.map``, which
  yields in submission order regardless of completion order.

Consequently ``run_cells(cells, jobs=N)`` returns bit-identical output
for every ``N`` (including the in-process ``jobs=1`` path), which the
test suite asserts through the lossless
:func:`~repro.harness.serialize.result_to_full_dict` encoding.

A crashed or raising worker does not abort the sweep: the cell is
retried exactly once with the same seed (in a fresh single-worker pool,
since a hard crash poisons the shared one), and a second failure
produces a structured per-cell error document in the cell's slot rather
than an exception — 99 healthy cells survive the one that dies.
"""

from __future__ import annotations

import logging

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

LOG = logging.getLogger(__name__)

from repro.errors import ConfigError
from repro.harness.serialize import result_to_full_dict
from repro.workloads import WORKLOAD_NAMES


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a single engine on a single seeded workload.

    The cell is the complete recipe for its run — workers reconstruct
    the workload and engine from these fields alone, which is what makes
    the sweep order- and scheduling-independent.
    """

    engine: str
    workload: str
    seed: int
    n_keys: int = 10_000
    n_ops: int = 100_000
    write_ratio: Optional[float] = None
    op_skew: Optional[float] = None
    #: Attach a telemetry registry to the run and return its contents
    #: under ``doc["metrics"]``.  Deterministic for any ``jobs`` count:
    #: the registry is filled from the run's own counters, never from
    #: scheduling state.
    collect_metrics: bool = False

    def label(self) -> str:
        return f"{self.engine}/{self.workload}/seed={self.seed}"


def expand_grid(
    engines: Sequence[str],
    workloads: Sequence[str],
    seeds: Sequence[int],
    n_keys: int = 10_000,
    n_ops: int = 100_000,
    write_ratio: Optional[float] = None,
    op_skew: Optional[float] = None,
    collect_metrics: bool = False,
) -> List[SweepCell]:
    """The full cross product, in (engine, workload, seed) order."""
    for name in workloads:
        if name not in WORKLOAD_NAMES:
            raise ConfigError(f"unknown workload {name!r}")
    return [
        SweepCell(
            engine=engine,
            workload=workload,
            seed=seed,
            n_keys=n_keys,
            n_ops=n_ops,
            write_ratio=write_ratio,
            op_skew=op_skew,
            collect_metrics=collect_metrics,
        )
        for engine in engines
        for workload in workloads
        for seed in seeds
    ]


def run_cell(cell: SweepCell) -> Dict[str, object]:
    """Execute one cell and return its lossless result dict.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can pickle
    it; imports are deferred so worker start-up stays cheap.
    """
    from repro.harness.runner import default_engines
    from repro.workloads import make_workload

    workload = make_workload(
        cell.workload,
        n_keys=cell.n_keys,
        n_ops=cell.n_ops,
        seed=cell.seed,
        write_ratio=cell.write_ratio,
        op_skew=cell.op_skew,
    )
    engine = default_engines(cell.n_keys, include=[cell.engine])[0]
    if cell.collect_metrics:
        from repro.obs import Telemetry

        engine.telemetry = Telemetry()
    result = engine.run(workload)
    doc = result_to_full_dict(result)
    if cell.collect_metrics:
        doc["metrics"] = engine.telemetry.registry.as_dict()
    doc["cell"] = {
        "engine": cell.engine,
        "workload": cell.workload,
        "seed": cell.seed,
        "n_keys": cell.n_keys,
        "n_ops": cell.n_ops,
        "write_ratio": cell.write_ratio,
        "op_skew": cell.op_skew,
    }
    return doc


def error_doc(
    cell: SweepCell, first: BaseException, retry: BaseException
) -> Dict[str, object]:
    """The structured slot-filler for a cell that failed twice."""
    return {
        "cell": {
            "engine": cell.engine,
            "workload": cell.workload,
            "seed": cell.seed,
            "n_keys": cell.n_keys,
            "n_ops": cell.n_ops,
            "write_ratio": cell.write_ratio,
            "op_skew": cell.op_skew,
        },
        "error": {
            "type": type(retry).__name__,
            "message": str(retry) or repr(retry),
            "first_type": type(first).__name__,
            "first_message": str(first) or repr(first),
            "retried": True,
        },
    }


def cell_failed(doc: Dict[str, object]) -> bool:
    """True when ``doc`` is a per-cell error slot, not a result."""
    return "error" in doc


def _retry_cell(
    worker: Callable[[SweepCell], Dict[str, object]],
    cell: SweepCell,
    first: BaseException,
    in_process: bool,
) -> Dict[str, object]:
    """One retry with the same seed; a fresh pool isolates hard crashes.

    A worker that died mid-cell may have poisoned its pool
    (``BrokenProcessPool`` marks every sibling future), so the retry
    never reuses the original executor.  The in-process path retries
    inline — a plain exception there cannot corrupt shared state.
    """
    LOG.warning("cell %s failed (%s); retrying once", cell.label(), first)
    try:
        if in_process:
            return worker(cell)
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(worker, cell).result()
    except BaseException as again:  # noqa: BLE001 - converted to a doc
        if isinstance(again, (KeyboardInterrupt, SystemExit)):
            raise
        LOG.error("cell %s failed twice; recording error", cell.label())
        return error_doc(cell, first, again)


def run_cells(
    cells: Sequence[SweepCell],
    jobs: int = 1,
    worker: Callable[[SweepCell], Dict[str, object]] = run_cell,
    on_result: Optional[
        Callable[[SweepCell, Dict[str, object]], None]
    ] = None,
) -> List[Dict[str, object]]:
    """Run every cell, ``jobs`` at a time, collecting in cell order.

    ``jobs=1`` runs in-process (no pool, easier to debug/profile);
    ``jobs>1`` fans out over processes.  Output is identical either way.

    A cell whose worker raises — or whose worker *process* dies — is
    retried once with the same seed; if the retry also fails its slot
    holds :func:`error_doc` output instead of a result, and every other
    cell still completes.  ``worker`` is injectable for tests and must
    be a module-level callable when ``jobs > 1`` (pickling).

    ``on_result`` fires once per cell, in collection (= submission)
    order, as soon as that cell's document is final — including the
    retry and error-document paths.  The experiment platform uses it to
    persist each finished cell before the grid completes, so a killed
    campaign resumes from the last persisted cell instead of from zero.
    An ``on_result`` that raises aborts the run (persistence failing is
    not a per-cell condition).
    """
    if jobs <= 0:
        raise ConfigError(f"jobs must be positive: {jobs}")
    cells = list(cells)
    if jobs == 1 or len(cells) <= 1:
        out = []
        for cell in cells:
            try:
                doc = worker(cell)
            except BaseException as exc:  # noqa: BLE001 - retried below
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                doc = _retry_cell(worker, cell, exc, in_process=True)
            if on_result is not None:
                on_result(cell, doc)
            out.append(doc)
        return out
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(worker, cell) for cell in cells]
        results: List[Dict[str, object]] = []
        for cell, future in zip(cells, futures):
            try:
                doc = future.result()
            except BaseException as exc:  # noqa: BLE001 - retried below
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                doc = _retry_cell(worker, cell, exc, in_process=False)
            if on_result is not None:
                on_result(cell, doc)
            results.append(doc)
    return results


def summarise(results: Iterable[Dict[str, object]]) -> List[Tuple[str, ...]]:
    """Compact per-cell rows for table rendering."""
    rows = []
    for doc in results:
        cell = doc["cell"]
        if cell_failed(doc):
            error = doc["error"]
            rows.append(
                (
                    cell["engine"],
                    cell["workload"],
                    str(cell["seed"]),
                    "FAILED",
                    error["type"],
                    error["message"][:40],
                )
            )
            continue
        elapsed = doc["elapsed_seconds"]
        mops = doc["n_ops"] / elapsed / 1e6 if elapsed else 0.0
        rows.append(
            (
                cell["engine"],
                cell["workload"],
                str(cell["seed"]),
                f"{mops:.2f}",
                f"{elapsed * 1e3:.3f}",
                f"{doc['cache_hit_rate']:.3f}",
            )
        )
    return rows
