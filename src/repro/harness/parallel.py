"""Parallel sweep runner: fan (engine, workload, seed) cells over processes.

Experiment grids are embarrassingly parallel — each cell builds its own
workload and tree from its own seed — so the runner uses a
``ProcessPoolExecutor`` with one task per cell.  Determinism is kept by
construction:

* **per-cell seeding** — a cell is a frozen :class:`SweepCell` value and
  the worker derives *everything* (workload, tree, engine) from it; no
  state crosses cells and nothing depends on scheduling order;
* **ordered collection** — results come back via ``Executor.map``, which
  yields in submission order regardless of completion order.

Consequently ``run_cells(cells, jobs=N)`` returns bit-identical output
for every ``N`` (including the in-process ``jobs=1`` path), which the
test suite asserts through the lossless
:func:`~repro.harness.serialize.result_to_full_dict` encoding.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.harness.serialize import result_to_full_dict
from repro.workloads import WORKLOAD_NAMES


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: a single engine on a single seeded workload.

    The cell is the complete recipe for its run — workers reconstruct
    the workload and engine from these fields alone, which is what makes
    the sweep order- and scheduling-independent.
    """

    engine: str
    workload: str
    seed: int
    n_keys: int = 10_000
    n_ops: int = 100_000
    write_ratio: Optional[float] = None
    op_skew: Optional[float] = None
    #: Attach a telemetry registry to the run and return its contents
    #: under ``doc["metrics"]``.  Deterministic for any ``jobs`` count:
    #: the registry is filled from the run's own counters, never from
    #: scheduling state.
    collect_metrics: bool = False

    def label(self) -> str:
        return f"{self.engine}/{self.workload}/seed={self.seed}"


def expand_grid(
    engines: Sequence[str],
    workloads: Sequence[str],
    seeds: Sequence[int],
    n_keys: int = 10_000,
    n_ops: int = 100_000,
    write_ratio: Optional[float] = None,
    op_skew: Optional[float] = None,
    collect_metrics: bool = False,
) -> List[SweepCell]:
    """The full cross product, in (engine, workload, seed) order."""
    for name in workloads:
        if name not in WORKLOAD_NAMES:
            raise ConfigError(f"unknown workload {name!r}")
    return [
        SweepCell(
            engine=engine,
            workload=workload,
            seed=seed,
            n_keys=n_keys,
            n_ops=n_ops,
            write_ratio=write_ratio,
            op_skew=op_skew,
            collect_metrics=collect_metrics,
        )
        for engine in engines
        for workload in workloads
        for seed in seeds
    ]


def run_cell(cell: SweepCell) -> Dict[str, object]:
    """Execute one cell and return its lossless result dict.

    Module-level (not a closure) so ``ProcessPoolExecutor`` can pickle
    it; imports are deferred so worker start-up stays cheap.
    """
    from repro.harness.runner import default_engines
    from repro.workloads import make_workload

    workload = make_workload(
        cell.workload,
        n_keys=cell.n_keys,
        n_ops=cell.n_ops,
        seed=cell.seed,
        write_ratio=cell.write_ratio,
        op_skew=cell.op_skew,
    )
    engine = default_engines(cell.n_keys, include=[cell.engine])[0]
    if cell.collect_metrics:
        from repro.obs import Telemetry

        engine.telemetry = Telemetry()
    result = engine.run(workload)
    doc = result_to_full_dict(result)
    if cell.collect_metrics:
        doc["metrics"] = engine.telemetry.registry.as_dict()
    doc["cell"] = {
        "engine": cell.engine,
        "workload": cell.workload,
        "seed": cell.seed,
        "n_keys": cell.n_keys,
        "n_ops": cell.n_ops,
        "write_ratio": cell.write_ratio,
        "op_skew": cell.op_skew,
    }
    return doc


def run_cells(
    cells: Sequence[SweepCell], jobs: int = 1
) -> List[Dict[str, object]]:
    """Run every cell, ``jobs`` at a time, collecting in cell order.

    ``jobs=1`` runs in-process (no pool, easier to debug/profile);
    ``jobs>1`` fans out over processes.  Output is identical either way.
    """
    if jobs <= 0:
        raise ConfigError(f"jobs must be positive: {jobs}")
    cells = list(cells)
    if jobs == 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(run_cell, cells, chunksize=1))


def summarise(results: Iterable[Dict[str, object]]) -> List[Tuple[str, ...]]:
    """Compact per-cell rows for table rendering."""
    rows = []
    for doc in results:
        cell = doc["cell"]
        elapsed = doc["elapsed_seconds"]
        mops = doc["n_ops"] / elapsed / 1e6 if elapsed else 0.0
        rows.append(
            (
                cell["engine"],
                cell["workload"],
                str(cell["seed"]),
                f"{mops:.2f}",
                f"{elapsed * 1e3:.3f}",
                f"{doc['cache_hit_rate']:.3f}",
            )
        )
    return rows
