"""Engine roster construction and grid running.

**Cache scaling.**  The paper's datasets hold 50 M keys against a 64 MB
class LLC, a 40 MB GPU L2, and DCART's 4 MB Tree_buffer.  Our scaled-down
runs would be meaningless against datasheet capacities — a 100 k-key tree
fits entirely in a 64 MB LLC, hiding every locality effect the paper
measures — so the harness scales each cache capacity by
``n_keys / 50e6`` (with small floors), keeping the *working-set-to-cache
ratio* of the original evaluation.  This is the standard methodology for
scaled architecture simulation, and it is what makes the measured ratios
transferable to the paper's scale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional

from repro.core.accelerator import DcartAccelerator
from repro.core.config import DCARTConfig
from repro.engines import (
    ArtRowexEngine,
    CuArtEngine,
    DcartCEngine,
    HeartEngine,
    OlcEngine,
    SmartEngine,
)
from repro.engines.base import Engine, RunResult
from repro.model.costs import DEFAULT_CPU_COSTS, DEFAULT_GPU_COSTS, CpuCosts, GpuCosts
from repro.workloads.ops import Workload

#: The paper's key-set size every capacity is calibrated against.
DEFAULT_SCALE_REFERENCE = 50_000_000

#: Set-geometry granule: capacities must divide into ways x line bytes.
_GRANULE = 16 * 64

#: The paper's comparison set, in presentation order.
ENGINE_ORDER = ("ART", "Heart", "SMART", "CuART", "DCART-C", "DCART")
#: Extensions available by explicit ``include=`` (not part of Fig. 9).
#: ``dcart-vec`` is the vectorized DCART simulation engine — identical
#: results, reported under the same "DCART" label, much faster host
#: wall-clock (core/vec.py).
EXTENSION_ENGINES = ("OLC", "dcart-vec")


def _scaled_capacity(
    reference_bytes: int, n_keys: int, floor_bytes: int
) -> int:
    scale = n_keys / DEFAULT_SCALE_REFERENCE
    raw = max(floor_bytes, int(reference_bytes * scale))
    return max(_GRANULE, (raw // _GRANULE) * _GRANULE)


def scaled_cpu_costs(n_keys: int, base: CpuCosts = DEFAULT_CPU_COSTS) -> CpuCosts:
    """CPU cost model with the LLC scaled to the key-set size."""
    return replace(
        base, llc_bytes=_scaled_capacity(base.llc_bytes, n_keys, 64 * 1024)
    )


def scaled_gpu_costs(n_keys: int, base: GpuCosts = DEFAULT_GPU_COSTS) -> GpuCosts:
    """GPU cost model with the L2 scaled to the key-set size."""
    return replace(
        base, l2_bytes=_scaled_capacity(base.l2_bytes, n_keys, 48 * 1024)
    )


def scaled_dcart_config(
    n_keys: int, base: Optional[DCARTConfig] = None
) -> DCARTConfig:
    """DCART config with Table I buffer sizes scaled to the key-set size."""
    if base is None:
        base = DCARTConfig()
    return DCARTConfig(
        n_sous=base.n_sous,
        n_buckets=base.n_buckets,
        scan_buffer_bytes=base.scan_buffer_bytes,
        bucket_buffer_bytes=base.bucket_buffer_bytes,
        shortcut_buffer_bytes=_scaled_capacity(
            base.shortcut_buffer_bytes, n_keys, 4 * 1024
        ),
        tree_buffer_bytes=_scaled_capacity(base.tree_buffer_bytes, n_keys, 8 * 1024),
        batch_size=base.batch_size,
        prefix_byte_offset=base.prefix_byte_offset,
        costs=base.costs,
        enable_shortcuts=base.enable_shortcuts,
        enable_combining=base.enable_combining,
        enable_overlap=base.enable_overlap,
        value_aware_tree_buffer=base.value_aware_tree_buffer,
        vectorized=base.vectorized,
    )


def default_engines(n_keys: int, include: Optional[Iterable[str]] = None) -> List[Engine]:
    """The paper's five comparison systems plus DCART, cache-scaled.

    ``include`` filters by engine name, preserving the canonical order
    ART, Heart, SMART, CuART, DCART-C, DCART.
    """
    cpu = scaled_cpu_costs(n_keys)
    gpu = scaled_gpu_costs(n_keys)
    roster: Dict[str, Engine] = {
        "ART": ArtRowexEngine(costs=cpu),
        "Heart": HeartEngine(costs=cpu),
        "SMART": SmartEngine(costs=cpu),
        "CuART": CuArtEngine(costs=gpu),
        "DCART-C": DcartCEngine(costs=cpu),
        "DCART": DcartAccelerator(config=scaled_dcart_config(n_keys)),
        "OLC": OlcEngine(costs=cpu),
        "dcart-vec": DcartAccelerator(
            config=scaled_dcart_config(
                n_keys, base=DCARTConfig(vectorized=True)
            )
        ),
    }
    wanted = list(include) if include is not None else list(ENGINE_ORDER)
    unknown = set(wanted) - set(roster)
    if unknown:
        raise KeyError(f"unknown engines: {sorted(unknown)}")
    order = list(ENGINE_ORDER) + list(EXTENSION_ENGINES)
    return [roster[name] for name in order if name in wanted]


def run_matrix(
    engines: Iterable[Engine], workloads: Iterable[Workload]
) -> Dict[str, Dict[str, RunResult]]:
    """Run every engine on every workload.

    Returns ``results[workload_name][engine_name]``.  The operation-
    centric engines (ART/Heart/SMART/CuART) execute the stream
    identically, so their traversal traces are collected once per
    workload and priced per engine; DCART and DCART-C execute their own
    (shortcut-taking) paths on fresh trees.
    """
    from repro.engines.cpu_common import CpuOperationCentricEngine
    from repro.engines.cuart import CuArtEngine

    engine_list = list(engines)
    results: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        shared_records = None
        per_engine: Dict[str, RunResult] = {}
        for engine in engine_list:
            if isinstance(engine, (CpuOperationCentricEngine, CuArtEngine)):
                if shared_records is None:
                    tree = engine.build_tree(workload)
                    shared_records = engine.collect_records(tree, workload)
                per_engine[engine.name] = engine.run(
                    workload, records=shared_records
                )
            else:
                per_engine[engine.name] = engine.run(workload)
        results[workload.name] = per_engine
    return results
