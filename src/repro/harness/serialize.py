"""Result serialization: RunResult / ExperimentResult → JSON and back.

Long experiment campaigns need their numbers on disk: each figure's
bench writes its rendered table, and this module writes the *data* —
every counter of every run — so downstream analysis (plots, regression
tracking across calibration changes) does not re-run simulations.

Only plain data goes out: the per-op latency array is summarised into
fixed percentiles, and the node-access Counter into its concentration
statistics, keeping files small and diffable.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Union

import numpy as np

from repro.engines.base import RunResult, TimeBreakdown
from repro.errors import SimulationError
from repro.workloads.histogram import concentration

LATENCY_PERCENTILES = (50.0, 90.0, 99.0, 99.9)


def result_to_dict(result: RunResult) -> dict:
    """Flatten a RunResult into JSON-safe data."""
    latencies = {}
    if len(result.latencies_ns):
        for pct in LATENCY_PERCENTILES:
            latencies[f"p{pct:g}_us"] = float(
                np.percentile(result.latencies_ns, pct) / 1e3
            )
    access_counts = result.node_access_counts
    spatial = {}
    if access_counts:
        spatial = {
            "distinct_nodes": len(access_counts),
            "top5pct_share": concentration(access_counts.values(), 0.05),
        }
    return {
        "engine": result.engine,
        "workload": result.workload,
        "platform": result.platform,
        "n_ops": result.n_ops,
        "elapsed_seconds": result.elapsed_seconds,
        "throughput_mops": result.throughput_mops,
        "breakdown": {
            "traverse_seconds": result.breakdown.traverse_seconds,
            "sync_seconds": result.breakdown.sync_seconds,
            "other_seconds": result.breakdown.other_seconds,
        },
        "partial_key_matches": result.partial_key_matches,
        "nodes_visited": result.nodes_visited,
        "distinct_nodes_visited": result.distinct_nodes_visited,
        "redundancy_ratio": result.redundancy_ratio,
        "bytes_fetched": result.bytes_fetched,
        "bytes_used": result.bytes_used,
        "cacheline_utilisation": result.cacheline_utilisation,
        "cache_hit_rate": result.cache_hit_rate,
        "lock_acquisitions": result.lock_acquisitions,
        "lock_contentions": result.lock_contentions,
        "energy_joules": result.energy_joules,
        "latency": latencies,
        "spatial": spatial,
        "extra": {k: _jsonable(v) for k, v in result.extra.items()},
    }


def result_to_full_dict(result: RunResult) -> dict:
    """Lossless flatten of a RunResult, for exact (golden) comparison.

    Unlike :func:`result_to_dict` nothing is summarised: the full per-op
    latency array and the complete node-access counter go out verbatim.
    Python's JSON floats round-trip exactly (shortest-repr), so equality
    of two of these dicts is bit-identity of the results.  Intended for
    determinism tests, not for large campaign archives.
    """
    return {
        "engine": result.engine,
        "workload": result.workload,
        "platform": result.platform,
        "n_ops": result.n_ops,
        "elapsed_seconds": result.elapsed_seconds,
        "breakdown": {
            "traverse_seconds": result.breakdown.traverse_seconds,
            "sync_seconds": result.breakdown.sync_seconds,
            "other_seconds": result.breakdown.other_seconds,
        },
        "partial_key_matches": result.partial_key_matches,
        "nodes_visited": result.nodes_visited,
        "distinct_nodes_visited": result.distinct_nodes_visited,
        "bytes_fetched": result.bytes_fetched,
        "bytes_used": result.bytes_used,
        "cache_hit_rate": result.cache_hit_rate,
        "lock_acquisitions": result.lock_acquisitions,
        "lock_contentions": result.lock_contentions,
        "energy_joules": result.energy_joules,
        "latencies_ns": [float(x) for x in result.latencies_ns],
        "node_access_counts": sorted(
            [int(node), int(count)]
            for node, count in result.node_access_counts.items()
        ),
        "extra": {k: _jsonable(v) for k, v in sorted(result.extra.items())},
    }


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return str(value)


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a (summary-level) RunResult from :func:`result_to_dict`.

    Per-op latencies and per-node counters are summarised on save, so
    the reloaded result carries their summaries in ``extra`` instead.
    """
    for field in ("engine", "workload", "platform", "n_ops"):
        if field not in data:
            raise SimulationError(f"result record missing {field!r}")
    result = RunResult(
        engine=data["engine"],
        workload=data["workload"],
        platform=data["platform"],
        n_ops=data["n_ops"],
    )
    result.elapsed_seconds = data.get("elapsed_seconds", 0.0)
    b = data.get("breakdown", {})
    result.breakdown = TimeBreakdown(
        traverse_seconds=b.get("traverse_seconds", 0.0),
        sync_seconds=b.get("sync_seconds", 0.0),
        other_seconds=b.get("other_seconds", 0.0),
    )
    for field in (
        "partial_key_matches",
        "nodes_visited",
        "distinct_nodes_visited",
        "bytes_fetched",
        "bytes_used",
        "cache_hit_rate",
        "lock_acquisitions",
        "lock_contentions",
        "energy_joules",
    ):
        if field in data:
            setattr(result, field, data[field])
    result.extra = dict(data.get("extra", {}))
    result.extra.update(data.get("latency", {}))
    result.extra.update(data.get("spatial", {}))
    return result


def save_result(result: RunResult, path_or_file: Union[str, IO]) -> None:
    """Write one RunResult as a JSON document."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            save_result(result, handle)
        return
    json.dump(result_to_dict(result), path_or_file, indent=1)


def load_result(path_or_file: Union[str, IO]) -> RunResult:
    """Read a result written by :func:`save_result`.

    Damaged files surface as :class:`~repro.errors.SimulationError` —
    undecodable JSON, a non-object document, or a record missing its
    identity fields all mean the file is not a saved result.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            return load_result(handle)
    payload = _load_json(path_or_file)
    if not isinstance(payload, dict):
        raise SimulationError(
            f"result file holds {type(payload).__name__}, expected an object"
        )
    return result_from_dict(payload)


def _load_json(handle: IO):
    try:
        return json.load(handle)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"corrupt result JSON: {exc}") from exc


def save_matrix(
    matrix: Dict[str, Dict[str, RunResult]], path_or_file: Union[str, IO]
) -> None:
    """Write a run_matrix result as one JSON document."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w") as handle:
            save_matrix(matrix, handle)
        return
    payload = {
        workload: {name: result_to_dict(r) for name, r in per_engine.items()}
        for workload, per_engine in matrix.items()
    }
    json.dump(payload, path_or_file, indent=1)


def load_matrix(path_or_file: Union[str, IO]) -> Dict[str, Dict[str, RunResult]]:
    """Read a matrix written by :func:`save_matrix`."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            return load_matrix(handle)
    payload = _load_json(path_or_file)
    if not isinstance(payload, dict):
        raise SimulationError(
            f"matrix file holds {type(payload).__name__}, expected an object"
        )
    return {
        workload: {
            name: result_from_dict(record) for name, record in per_engine.items()
        }
        for workload, per_engine in payload.items()
    }
