"""Experiment harness: engines × workloads → the paper's tables/figures.

* :mod:`runner`      — build the engine roster (with working-set-scaled
  cache capacities) and run engine × workload grids;
* :mod:`comparison`  — speedups, energy savings, ratio tables;
* :mod:`formatting`  — fixed-width text rendering for bench output;
* :mod:`experiments` — one entry point per paper figure/table.
"""

from repro.harness.runner import (
    DEFAULT_SCALE_REFERENCE,
    default_engines,
    run_matrix,
    scaled_cpu_costs,
    scaled_dcart_config,
    scaled_gpu_costs,
)
from repro.harness.comparison import (
    energy_savings,
    ratio_table,
    speedups,
)
from repro.harness.formatting import format_table

__all__ = [
    "DEFAULT_SCALE_REFERENCE",
    "default_engines",
    "energy_savings",
    "format_table",
    "ratio_table",
    "run_matrix",
    "scaled_cpu_costs",
    "scaled_dcart_config",
    "scaled_gpu_costs",
    "speedups",
]
