"""Fixed-width text tables for benchmark output.

The benchmarks print the same rows/series the paper's figures plot; this
module renders them readably without any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import SimulationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of rows as an aligned text table."""
    materialised: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise SimulationError(
                f"row width {len(row)} does not match headers {len(headers)}"
            )
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        materialised.append(rendered)

    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)
