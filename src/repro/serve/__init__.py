"""Open-loop serving mode: arrival processes, admission control, SLOs.

Everything else in the repo replays a pre-built operation stream
closed-loop — the accelerator is never idle and never behind, so latency
is purely service time.  This package adds the serving-grade view:

* :mod:`arrivals` — seeded arrival-process generators (Poisson, bursty
  MMPP, diurnal ramp) that stamp every workload operation with an
  arrival cycle at a configurable offered load;
* :mod:`admission` — a bounded ingest queue with pluggable admission
  policies (drop-tail, watermark shedding, token bucket) so overload
  sheds load instead of growing latency without bound;
* :mod:`batcher`  — a size-or-deadline batch former, the open-loop
  analogue of the closed-loop fixed batch;
* :mod:`slo`      — latency percentiles, goodput, and recovery-time
  objective (RTO) over the completion timeline;
* :mod:`simulator` — the event loop tying it together over a
  :class:`~repro.core.accelerator.AcceleratorSession` (or a calibrated
  stand-in for the CPU baselines), plus the offered-load sweep behind
  ``repro serve``.
"""

from repro.serve.admission import (
    ADMISSION_NAMES,
    AdmissionPolicy,
    AdmitAll,
    DropTail,
    TokenBucket,
    WatermarkShedding,
    make_admission,
)
from repro.serve.arrivals import (
    ARRIVAL_NAMES,
    ArrivalProcess,
    DiurnalProcess,
    MmppProcess,
    PoissonProcess,
    make_arrivals,
)
from repro.serve.batcher import BatchFormer, FormedBatch
from repro.serve.simulator import (
    SERVE_SCHEMA,
    ServeConfig,
    ServeResult,
    ServingSimulator,
    load_sweep,
)
from repro.serve.slo import SloTracker, latency_percentiles_us, rto_cycles

__all__ = [
    "ADMISSION_NAMES",
    "ARRIVAL_NAMES",
    "SERVE_SCHEMA",
    "AdmissionPolicy",
    "AdmitAll",
    "ArrivalProcess",
    "BatchFormer",
    "DiurnalProcess",
    "DropTail",
    "FormedBatch",
    "MmppProcess",
    "PoissonProcess",
    "ServeConfig",
    "ServeResult",
    "ServingSimulator",
    "SloTracker",
    "TokenBucket",
    "WatermarkShedding",
    "latency_percentiles_us",
    "load_sweep",
    "make_admission",
    "make_arrivals",
    "rto_cycles",
]
