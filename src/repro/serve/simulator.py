"""The open-loop serving event loop and the offered-load sweep.

:class:`ServingSimulator` drives one serving run: a seeded arrival
process stamps every workload op with an arrival cycle at a chosen
offered load (a fraction of the engine's calibrated closed-loop
capacity), an admission policy sheds or enqueues each op against the
live queue depth, the size-or-deadline :class:`~repro.serve.batcher.
BatchFormer` closes batches, and each batch executes on the engine
backend — a real :class:`~repro.core.accelerator.AcceleratorSession`
for DCART (so chaos events, durability, and crash+recover all fire
mid-traffic exactly as closed-loop), or a calibrated service-rate
stand-in for the CPU/GPU baselines.  Every completed op's latency is
``completion - arrival`` cycles: queueing + batch forming + service.

:func:`load_sweep` runs the simulator across offered loads, derives the
SLO when not pinned (``SLO_FACTOR`` x the lowest load's p99), finds the
knee (the highest load whose p99 still meets the SLO), computes the
recovery-time objective for faulted runs, and emits the
``serve-sweep/v1`` JSON report behind ``repro serve``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.accelerator import DcartAccelerator
from repro.core.config import DCARTConfig
from repro.durability import DurabilityManager, recover
from repro.errors import ConfigError, SimulatedCrash, SimulationError
from repro.faults import FaultInjector, FaultSchedule
from repro.serve.admission import AdmissionPolicy, make_admission
from repro.serve.arrivals import make_arrivals
from repro.serve.batcher import BatchFormer, FormedBatch
from repro.serve.slo import SloTracker, rto_cycles
from repro.workloads.ops import Operation, Workload

#: JSON report schema identifier (asserted by CI's serve-smoke job).
SERVE_SCHEMA = "serve-sweep/v1"

#: Derived SLO when none is pinned: this multiple of the lowest offered
#: load's p99 (the "healthy tail" the service commits to staying near).
SLO_FACTOR = 5.0

#: Simulation clock for engines billed in nanoseconds (CPU/GPU): one
#: "cycle" is one nanosecond.
NS_CLOCK_HZ = 1e9


@dataclass
class ServeConfig:
    """Knobs of one serving setup (shared across a load sweep)."""

    arrival: str = "poisson"
    admission: str = "drop-tail"
    #: Bound on ops queued ahead of the server (pending in the batch
    #: former plus formed-but-unstarted); the unit every policy sheds
    #: against.  Ignored by ``admission="none"``.
    queue_capacity: int = 8192
    #: Serving batch size — small relative to the closed-loop 32 Ki so
    #: the size-or-deadline trade-off is live at sane op counts.
    batch_size: int = 512
    #: Batch deadline: a batch closes this long after its first op.
    deadline_us: float = 100.0
    #: Latency SLO; ``None`` derives it from the lowest swept load.
    slo_us: Optional[float] = None
    #: Completions per sliding window of the RTO's windowed p99.
    rto_window_ops: int = 64
    burst_factor: float = 4.0
    watermark: float = 0.5
    checkpoint_every: int = 4

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ConfigError(
                f"queue_capacity must be positive: {self.queue_capacity}"
            )
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive: {self.batch_size}")
        if self.deadline_us <= 0:
            raise ConfigError(f"deadline_us must be positive: {self.deadline_us}")
        if self.slo_us is not None and self.slo_us <= 0:
            raise ConfigError(f"slo_us must be positive: {self.slo_us}")
        if self.rto_window_ops <= 0:
            raise ConfigError(
                f"rto_window_ops must be positive: {self.rto_window_ops}"
            )
        # Checked here, not just when the bursty process is built: a
        # sweep config carrying a nonsense burst factor should fail at
        # construction, before any calibration run burns cycles.
        if self.burst_factor <= 1.0:
            raise ConfigError(
                f"burst_factor must exceed 1: {self.burst_factor}"
            )
        if not 0.0 < self.watermark <= 1.0:
            raise ConfigError(
                f"watermark must be in (0, 1]: {self.watermark}"
            )
        if self.checkpoint_every <= 0:
            raise ConfigError(
                f"checkpoint_every must be positive: {self.checkpoint_every}"
            )


@dataclass
class ServeResult:
    """One serving run at one offered load."""

    engine: str
    workload: str
    seed: int
    offered_load: float
    rate_ops_per_s: float
    offered_ops: int
    admitted_ops: int
    shed_ops: int
    #: Ops admitted but destroyed by a crash before completing.
    lost_ops: int
    completed_ops: int
    n_batches: int
    deadline_batches: int
    queue_peak: int
    p50_us: float
    p99_us: float
    p999_us: float
    goodput_mops: float
    crashes: int
    downtime_cycles: int
    #: Start cycle of every batch a scheduled fault event landed on.
    fault_cycles: List[int] = field(default_factory=list)
    #: Recovery-time objective after the first fault; filled by
    #: :func:`load_sweep` once the SLO is known.  ``None`` = no fault,
    #: or the tail never re-entered SLO.
    rto_cycles: Optional[int] = None
    tracker: SloTracker = field(default_factory=SloTracker, repr=False)

    @property
    def shed_rate(self) -> float:
        if self.offered_ops == 0:
            return 0.0
        return self.shed_ops / self.offered_ops

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "workload": self.workload,
            "seed": self.seed,
            "offered_load": self.offered_load,
            "rate_ops_per_s": self.rate_ops_per_s,
            "offered_ops": self.offered_ops,
            "admitted_ops": self.admitted_ops,
            "shed_ops": self.shed_ops,
            "lost_ops": self.lost_ops,
            "completed_ops": self.completed_ops,
            "n_batches": self.n_batches,
            "deadline_batches": self.deadline_batches,
            "queue_peak": self.queue_peak,
            "shed_rate": self.shed_rate,
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "goodput_mops": self.goodput_mops,
            "crashes": self.crashes,
            "downtime_cycles": self.downtime_cycles,
            "fault_cycles": list(self.fault_cycles),
            "rto_cycles": self.rto_cycles,
        }


# ---------------------------------------------------------------------------
# engine backends
# ---------------------------------------------------------------------------


class _DcartBackend:
    """Serve through a live :class:`AcceleratorSession` (the real model)."""

    def __init__(
        self,
        accelerator: DcartAccelerator,
        workload: Workload,
        tree,
    ):
        self.accelerator = accelerator
        self.workload = workload
        if accelerator.injector is not None:
            accelerator.injector.reset()
        self.session = accelerator.open_session(workload, tree)

    def execute(
        self, ops: List[Operation], batch_index: int
    ) -> Tuple[int, int, List[Tuple[int, int]]]:
        """(pcu_cycles, service_cycles, [(op_id, completion offset)])."""
        execution = self.session.execute_batch(ops, batch_index)
        completions: List[Tuple[int, int]] = []
        for outcome in execution.outcomes:
            for op_id, cyc in zip(outcome.op_ids, outcome.completion_cycles):
                completions.append((op_id, execution.pcu_cycles + cyc))
        return execution.pcu_cycles, execution.service_cycles, completions

    def drain(self, batch_index: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Single-machine batches never defer completions."""
        return 0, []

    def recover_after_crash(self) -> int:
        """Crash+recover mid-traffic; returns the downtime in cycles.

        The crashed batch is gone (its WAL group never committed).
        Recovery rebuilds the tree from the newest valid checkpoint plus
        the committed WAL tail, bills the restart through
        :meth:`~repro.model.costs.DurabilityCosts.recovery_seconds`, and
        re-opens a fresh session (and WAL) over the recovered tree so
        traffic resumes exactly where a restarted server would.
        """
        accelerator = self.accelerator
        manager = accelerator.durability
        if manager is None:  # pragma: no cover - injector skips unarmed crashes
            raise SimulationError("crash without a DurabilityManager attached")
        manager.close()
        recovery = recover(manager.directory)
        downtime_seconds = manager.costs.recovery_seconds(recovery.ops_replayed)
        accelerator.durability = DurabilityManager(
            manager.directory,
            checkpoint_every=manager.checkpoint_every,
            costs=manager.costs,
        )
        self.session = accelerator.open_session(self.workload, recovery.tree)
        clock_hz = accelerator.config.costs.clock_hz
        return max(1, int(downtime_seconds * clock_hz))

    def close(self) -> None:
        if self.accelerator.durability is not None:
            self.accelerator.durability.close()


class _ClusterBackend:
    """Serve through a sharded :class:`ClusterCoordinator`.

    Batch pricing maps onto the serve loop's ``(pcu, service)`` split as
    ``(routing, shard phase + administration)``: the coordinator's
    serial routing prelude plays the PCU's role, and failover or
    rebalance administration extends the service phase of the batch it
    lands in.  Ops deferred to a dark shard complete in a *later* batch
    (the one whose failover drains the handoff queue), which is why the
    serve loop keeps arrival stamps across batches.
    """

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterConfig,
        accel_config: DCARTConfig,
        schedule: Optional[FaultSchedule],
    ):
        self.coordinator = ClusterCoordinator(
            workload,
            cluster,
            accel_config=accel_config,
            schedule=schedule,
        )

    def execute(
        self, ops: List[Operation], batch_index: int
    ) -> Tuple[int, int, List[Tuple[int, int]]]:
        result = self.coordinator.execute_batch(ops, batch_index)
        return (
            result.route_cycles,
            result.shard_cycles + result.admin_cycles,
            result.completions,
        )

    def drain(self, batch_index: int) -> Tuple[int, List[Tuple[int, int]]]:
        """Spin the cluster clock until pending failovers finish."""
        result = self.coordinator.drain(batch_index)
        return result.admin_cycles, result.completions

    def recover_after_crash(self) -> int:  # pragma: no cover - no CrashFault
        raise SimulationError(
            "cluster serving handles faults via failover, not "
            "whole-process crash recovery"
        )

    def close(self) -> None:
        self.coordinator.close()


class _CalibratedBackend:
    """Serve a baseline engine at its calibrated closed-loop rate.

    The CPU/GPU engines have no per-batch hardware session to replay, so
    serving prices their batches at the mean service rate measured
    closed-loop: a batch of *n* ops occupies the server ``n / rate``
    seconds, ops completing evenly through it.  Faults and durability do
    not apply (those are DCART subsystems).
    """

    def __init__(self, ops_per_s: float, clock_hz: float):
        if ops_per_s <= 0:
            raise ConfigError(
                f"calibrated service rate must be positive: {ops_per_s}"
            )
        self.cycles_per_op = clock_hz / ops_per_s

    def execute(
        self, ops: List[Operation], batch_index: int
    ) -> Tuple[int, int, List[Tuple[int, int]]]:
        completions = [
            (op.op_id, int(math.ceil((j + 1) * self.cycles_per_op)))
            for j, op in enumerate(ops)
        ]
        service_cycles = int(math.ceil(len(ops) * self.cycles_per_op))
        return 0, service_cycles, completions

    def drain(self, batch_index: int) -> Tuple[int, List[Tuple[int, int]]]:
        return 0, []

    def recover_after_crash(self) -> int:  # pragma: no cover - never crashes
        raise SimulationError("calibrated backend cannot crash")

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# the simulator
# ---------------------------------------------------------------------------


class ServingSimulator:
    """Open-loop serving over one workload and one engine."""

    def __init__(
        self,
        workload: Workload,
        serve: ServeConfig,
        engine: str = "DCART",
        accel_config: Optional[DCARTConfig] = None,
        schedule: Optional[FaultSchedule] = None,
        capacity_ops_per_s: Optional[float] = None,
        cluster_config: Optional[ClusterConfig] = None,
    ):
        self.workload = workload
        self.serve = serve
        self.engine = engine
        self.schedule = schedule
        self.cluster_config = cluster_config
        self.accel_config = (
            accel_config if accel_config is not None else DCARTConfig()
        )
        if cluster_config is not None and engine != "DCART":
            raise ConfigError(
                f"cluster serving requires the DCART engine (got {engine!r})"
            )
        if engine == "DCART":
            self.clock_hz = self.accel_config.costs.clock_hz
            if schedule is not None:
                schedule.validate_sous(self.accel_config.n_sous)
                # Shard-level events are only executable with a cluster
                # behind the server; a single-machine run rejects them
                # up front instead of silently never firing them.
                n_shards = (
                    cluster_config.n_shards
                    if cluster_config is not None
                    else 0
                )
                schedule.validate_shards(n_shards)
        else:
            if schedule is not None:
                raise ConfigError(
                    "fault schedules require the DCART engine "
                    f"(got {engine!r})"
                )
            self.clock_hz = NS_CLOCK_HZ
        self._capacity = capacity_ops_per_s

    # ------------------------------------------------------------------

    def capacity_ops_per_s(self) -> float:
        """Closed-loop capacity the offered-load fractions scale from."""
        if self._capacity is None:
            self._capacity = self._calibrate()
        return self._capacity

    def _calibrate(self) -> float:
        if self.cluster_config is not None:
            # The cluster's own closed-loop drain: routing, replication
            # shipping, and rebalance probes all bill into the capacity
            # the offered-load fractions scale from (no faults — the
            # capacity is the healthy cluster's).
            report = ClusterCoordinator(
                self.workload,
                self.cluster_config,
                accel_config=self.accel_config,
            ).run(batch_size=self.serve.batch_size)
            rate = float(report["throughput_mops"]) * 1e6
            if rate <= 0:
                raise ConfigError(
                    "cannot calibrate cluster serving capacity: "
                    "closed-loop throughput is zero"
                )
            return rate
        if self.engine == "DCART":
            result = DcartAccelerator(config=self.accel_config).run(
                self.workload
            )
        else:
            from repro.harness.runner import default_engines

            engine_obj = default_engines(
                self.workload.n_keys, include=[self.engine]
            )[0]
            result = engine_obj.run(self.workload)
        rate = result.throughput_mops * 1e6
        if rate <= 0:
            raise ConfigError(
                f"cannot calibrate serving capacity for {self.engine}: "
                "closed-loop throughput is zero"
            )
        return rate

    def _make_admission(self, seed: int) -> AdmissionPolicy:
        serve = self.serve
        if serve.admission == "token-bucket":
            return make_admission(
                "token-bucket",
                serve.queue_capacity,
                fill_rate_per_cycle=self.capacity_ops_per_s() / self.clock_hz,
                burst=serve.batch_size,
            )
        return make_admission(
            serve.admission,
            serve.queue_capacity,
            watermark=serve.watermark,
            seed=seed,
        )

    def _open_backend(self, durability_dir: Optional[str]):
        if self.cluster_config is not None:
            return _ClusterBackend(
                self.workload,
                self.cluster_config,
                self.accel_config,
                self.schedule,
            )
        if self.engine != "DCART":
            return _CalibratedBackend(self.capacity_ops_per_s(), self.clock_hz)
        injector = (
            FaultInjector(self.schedule) if self.schedule is not None else None
        )
        durability = None
        if durability_dir is not None:
            durability = DurabilityManager(
                durability_dir, checkpoint_every=self.serve.checkpoint_every
            )
        accelerator = DcartAccelerator(
            config=self.accel_config, injector=injector, durability=durability
        )
        tree = accelerator.build_tree(self.workload)
        return _DcartBackend(accelerator, self.workload, tree)

    # ------------------------------------------------------------------

    def run(
        self,
        offered_load: float,
        seed: int = 1,
        durability_dir: Optional[str] = None,
    ) -> ServeResult:
        """One serving run at ``offered_load`` x closed-loop capacity.

        A :class:`CrashFault` on the schedule needs ``durability_dir``;
        without one the injector logs and skips the crash (nothing to
        tear).  Everything is a pure function of ``(workload, serve,
        schedule, offered_load, seed)``, so re-running reproduces the
        result bit for bit.
        """
        if offered_load <= 0:
            raise ConfigError(f"offered load must be positive: {offered_load}")
        serve = self.serve
        rate = offered_load * self.capacity_ops_per_s()
        ops = list(self.workload.operations)
        arrivals = make_arrivals(
            serve.arrival, burst_factor=serve.burst_factor
        ).arrival_cycles(len(ops), rate, self.clock_hz, seed)
        admission = self._make_admission(seed)
        deadline_cycles = max(
            1, int(serve.deadline_us * 1e-6 * self.clock_hz)
        )
        former = BatchFormer(serve.batch_size, deadline_cycles)
        backend = self._open_backend(durability_dir)
        tracker = SloTracker()

        server_free = 0
        batch_index = 0
        n_batches = deadline_batches = 0
        admitted = shed = lost = completed = 0
        crashes = 0
        downtime_cycles = 0
        queue_peak = 0
        fault_cycles: List[int] = []
        pending_faults = {
            event_batch
            for event_batch in (
                getattr(e, "batch", None)
                for e in (self.schedule.events if self.schedule else ())
            )
            if event_batch is not None
        }
        # Formed-but-unstarted batches, for the backpressure signal:
        # (service start cycle, n_ops); drained as arrivals pass starts.
        backlog: Deque[Tuple[int, int]] = deque()
        backlog_ops = 0
        # Arrival stamps of admitted-but-uncompleted ops.  Kept across
        # batches: a cluster backend defers ops routed to a dark shard
        # and completes them in the batch whose failover drains the
        # handoff queue, so a completion may reference an earlier
        # batch's op.  Entries pop when the op completes.
        arrival_by_id: Dict[int, int] = {}

        def record_completions(
            completions: List[Tuple[int, int]], start: int
        ) -> None:
            nonlocal completed
            for op_id, offset in completions:
                completion = start + offset
                arrived = arrival_by_id.pop(op_id, None)
                if arrived is None:  # pragma: no cover - SOUs report all ops
                    continue
                tracker.record(
                    completion,
                    (completion - arrived) / self.clock_hz * 1e6,
                )
                completed += 1

        def execute(batch: FormedBatch) -> None:
            nonlocal server_free, batch_index, n_batches, deadline_batches
            nonlocal lost, crashes, downtime_cycles, backlog_ops
            start = max(server_free, batch.close_cycle)
            if batch_index in pending_faults:
                pending_faults.discard(batch_index)
                fault_cycles.append(start)
            arrival_by_id.update(
                zip((op.op_id for op in batch.ops), batch.arrival_cycles)
            )
            try:
                pcu, service, completions = backend.execute(
                    batch.ops, batch_index
                )
            except SimulatedCrash:
                crashes += 1
                lost += len(batch.ops)
                for op in batch.ops:
                    arrival_by_id.pop(op.op_id, None)
                down = backend.recover_after_crash()
                downtime_cycles += down
                server_free = start + down
                n_batches += 1
                batch_index += 1
                return
            end = start + pcu + service
            record_completions(completions, start)
            server_free = end
            n_batches += 1
            if batch.closed_by_deadline:
                deadline_batches += 1
            batch_index += 1
            backlog.append((start, len(batch.ops)))
            backlog_ops += len(batch.ops)

        for op, arrival in zip(ops, arrivals):
            now = int(arrival)
            expired = former.poll(now)
            if expired is not None:
                execute(expired)
            while backlog and backlog[0][0] <= now:
                backlog_ops -= backlog.popleft()[1]
            depth = former.pending + backlog_ops
            queue_peak = max(queue_peak, depth)
            if admission.admit(now, depth):
                admitted += 1
                full = former.offer(op, now)
                if full is not None:
                    execute(full)
            else:
                shed += 1

        last_arrival = int(arrivals[-1]) if arrivals.size else 0
        tail = former.flush(last_arrival)
        if tail is not None:
            execute(tail)
        # A shard that died near the end of the stream may still be
        # awaiting failover; spin the cluster forward so its handoff
        # ops complete rather than silently vanish.
        drain_cycles, drain_completions = backend.drain(batch_index)
        if drain_completions:
            record_completions(drain_completions, server_free)
        server_free += drain_cycles
        backend.close()

        percentiles = tracker.percentiles()
        goodput_mops = 0.0
        if tracker.n_completed:
            first_arrival = int(arrivals[0])
            last_completion = int(tracker.completion_order()[0][-1])
            span_seconds = (
                max(1, last_completion - first_arrival) / self.clock_hz
            )
            goodput_mops = completed / span_seconds / 1e6

        result = ServeResult(
            engine=self.engine,
            workload=self.workload.name,
            seed=seed,
            offered_load=offered_load,
            rate_ops_per_s=rate,
            offered_ops=len(ops),
            admitted_ops=admitted,
            shed_ops=shed,
            lost_ops=lost,
            completed_ops=completed,
            n_batches=n_batches,
            deadline_batches=deadline_batches,
            queue_peak=queue_peak,
            p50_us=percentiles["p50_us"],
            p99_us=percentiles["p99_us"],
            p999_us=percentiles["p999_us"],
            goodput_mops=goodput_mops,
            crashes=crashes,
            downtime_cycles=downtime_cycles,
            fault_cycles=fault_cycles,
            tracker=tracker,
        )
        if serve.slo_us is not None and fault_cycles:
            result.rto_cycles = rto_cycles(
                tracker, fault_cycles[0], serve.slo_us, serve.rto_window_ops
            )
        return result


# ---------------------------------------------------------------------------
# the sweep
# ---------------------------------------------------------------------------


def load_sweep(
    workload: Workload,
    serve: ServeConfig,
    loads: Sequence[float],
    seed: int = 1,
    engine: str = "DCART",
    accel_config: Optional[DCARTConfig] = None,
    schedule: Optional[FaultSchedule] = None,
    durability_dir: Optional[str] = None,
    capacity_ops_per_s: Optional[float] = None,
    cluster_config: Optional[ClusterConfig] = None,
) -> Dict[str, object]:
    """Sweep offered load; emit the ``serve-sweep/v1`` report dict.

    Loads are fractions of the engine's calibrated closed-loop capacity
    and are swept in ascending order.  The SLO comes from
    ``serve.slo_us`` when pinned, else ``SLO_FACTOR`` x the lowest
    load's p99.  The knee is the highest swept load whose p99 meets the
    SLO (``None`` when even the lowest misses it).  When ``schedule``
    carries faults, each row's recovery-time objective is computed
    against that SLO; a :class:`~repro.faults.schedule.CrashFault` run
    stores its durable state under ``durability_dir`` (one subdirectory
    per load).
    """
    if not loads:
        raise ConfigError("load sweep needs at least one offered load")
    ordered = sorted(loads)
    if ordered[0] <= 0:
        raise ConfigError(f"offered loads must be positive: {ordered[0]}")
    simulator = ServingSimulator(
        workload,
        serve,
        engine=engine,
        accel_config=accel_config,
        schedule=schedule,
        capacity_ops_per_s=capacity_ops_per_s,
        cluster_config=cluster_config,
    )
    capacity = simulator.capacity_ops_per_s()

    rows: List[ServeResult] = []
    for index, load in enumerate(ordered):
        run_dir = None
        if durability_dir is not None:
            run_dir = f"{durability_dir}/load-{index}"
        rows.append(simulator.run(load, seed=seed, durability_dir=run_dir))

    if serve.slo_us is not None:
        slo_us = serve.slo_us
    else:
        slo_us = SLO_FACTOR * max(rows[0].p99_us, 1.0)
    for row in rows:
        if row.fault_cycles:
            row.rto_cycles = rto_cycles(
                row.tracker, row.fault_cycles[0], slo_us, serve.rto_window_ops
            )
    knee_load: Optional[float] = None
    for load, row in zip(ordered, rows):
        if row.p99_us <= slo_us:
            knee_load = load

    return {
        "schema": SERVE_SCHEMA,
        "engine": engine,
        "workload": workload.name,
        "seed": seed,
        "arrival": serve.arrival,
        "admission": serve.admission,
        "batch_size": serve.batch_size,
        "deadline_us": serve.deadline_us,
        "queue_capacity": serve.queue_capacity,
        "capacity_ops_per_s": capacity,
        "cluster": (
            {
                "n_shards": cluster_config.n_shards,
                "replicas": cluster_config.replicas,
                "partitioning": cluster_config.partitioning,
                "rebalance": cluster_config.rebalance,
            }
            if cluster_config is not None
            else None
        ),
        "slo_us": slo_us,
        "knee_load": knee_load,
        "fault_schedule_signature": (
            schedule.signature() if schedule is not None else None
        ),
        "rows": [row.to_dict() for row in rows],
    }
