"""Size-or-deadline batch former: the open-loop analogue of fixed batches.

Closed-loop, the accelerator always has ``batch_size`` ops on hand.
Open-loop it must choose between waiting for a full batch (amortising
the PCU combine and HBM streaming) and dispatching early (bounding the
first arrival's queueing delay).  The former closes a batch when either

* it holds ``batch_size`` admitted ops, or
* ``deadline_cycles`` have passed since its *first* op arrived

— whichever comes first, mirroring size-or-timeout batching in serving
systems and the level-batched FPGA search literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.workloads.ops import Operation


@dataclass
class FormedBatch:
    """One closed batch, ready for the accelerator session."""

    ops: List[Operation]
    #: Arrival cycle of each op, aligned with ``ops``.
    arrival_cycles: List[int]
    #: Cycle at which the former closed the batch (size reached or
    #: deadline hit); execution cannot start earlier.
    close_cycle: int
    closed_by_deadline: bool = False


@dataclass
class BatchFormer:
    """Accumulates admitted ops and closes batches on size-or-deadline."""

    batch_size: int
    deadline_cycles: int
    _ops: List[Operation] = field(default_factory=list)
    _arrivals: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError(
                f"batch_size must be positive: {self.batch_size}"
            )
        if self.deadline_cycles <= 0:
            raise ConfigError(
                f"deadline_cycles must be positive: {self.deadline_cycles}"
            )

    @property
    def pending(self) -> int:
        """Admitted ops waiting for their batch to close."""
        return len(self._ops)

    @property
    def deadline_at(self) -> Optional[int]:
        """Cycle the open batch must close by, or None when empty."""
        if not self._arrivals:
            return None
        return self._arrivals[0] + self.deadline_cycles

    def offer(self, op: Operation, arrival_cycle: int) -> Optional[FormedBatch]:
        """Add one admitted op; return the batch if this op filled it."""
        self._ops.append(op)
        self._arrivals.append(arrival_cycle)
        if len(self._ops) >= self.batch_size:
            return self._close(arrival_cycle, by_deadline=False)
        return None

    def poll(self, now_cycle: int) -> Optional[FormedBatch]:
        """Close the open batch if its deadline has passed by ``now_cycle``."""
        deadline = self.deadline_at
        if deadline is not None and now_cycle >= deadline:
            return self._close(deadline, by_deadline=True)
        return None

    def flush(self, now_cycle: int) -> Optional[FormedBatch]:
        """Close whatever is pending (end of the arrival stream)."""
        if not self._ops:
            return None
        deadline = self.deadline_at
        close = min(now_cycle, deadline) if deadline is not None else now_cycle
        return self._close(max(close, self._arrivals[-1]), by_deadline=True)

    def _close(self, close_cycle: int, by_deadline: bool) -> FormedBatch:
        batch = FormedBatch(
            ops=self._ops,
            arrival_cycles=self._arrivals,
            close_cycle=close_cycle,
            closed_by_deadline=by_deadline,
        )
        self._ops = []
        self._arrivals = []
        return batch
