"""SLO accounting: latency percentiles, goodput, and recovery time.

The serving simulator records one ``(completion_cycle, latency_us)``
sample per completed op.  This module turns that stream into the
serving-grade verdicts:

* :func:`latency_percentiles_us` — p50/p99/p999 over the whole run;
* :class:`SloTracker` — the sample sink, plus a *windowed* p99 computed
  over sliding windows of consecutive completions, which is the signal
  the recovery-time objective is defined on;
* :func:`rto_cycles` — cycles from a fault until the windowed p99 first
  re-enters the SLO on purely post-fault traffic.

Definitions (mirrored in ``docs/SERVING.md``): an op's latency is
``completion_cycle - arrival_cycle`` (queueing + forming + service), a
run's goodput is completed ops over the span from first arrival to last
completion, and RTO is measured on completion order, not arrival order,
so a recovering server's backlog drain counts against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
import numpy.typing as npt

#: Array aliases for the two sample streams the tracker holds.
FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]

#: Percentiles the report carries, as (label, quantile).
PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50_us", 50.0),
    ("p99_us", 99.0),
    ("p999_us", 99.9),
)


def latency_percentiles_us(latencies_us: FloatArray) -> Dict[str, float]:
    """p50/p99/p999 of a latency sample, NaN-free even when empty."""
    out: Dict[str, float] = {}
    for label, q in PERCENTILES:
        if latencies_us.size == 0:
            out[label] = 0.0
        else:
            out[label] = float(np.percentile(latencies_us, q))
    return out


class SloTracker:
    """Collects per-op completions and answers SLO questions."""

    def __init__(self) -> None:
        self._completion_cycles: List[int] = []
        self._latencies_us: List[float] = []

    def record(self, completion_cycle: int, latency_us: float) -> None:
        self._completion_cycles.append(completion_cycle)
        self._latencies_us.append(latency_us)

    @property
    def n_completed(self) -> int:
        return len(self._latencies_us)

    def latencies_us(self) -> FloatArray:
        return np.asarray(self._latencies_us, dtype=np.float64)

    def percentiles(self) -> Dict[str, float]:
        return latency_percentiles_us(self.latencies_us())

    def completion_order(self) -> Tuple[IntArray, FloatArray]:
        """(completion_cycles, latencies_us), sorted by completion."""
        cycles: IntArray = np.asarray(self._completion_cycles, dtype=np.int64)
        lats: FloatArray = np.asarray(self._latencies_us, dtype=np.float64)
        order = np.argsort(cycles, kind="stable")
        return cycles[order], lats[order]

    def windowed_p99(
        self, window_ops: int
    ) -> Tuple[IntArray, IntArray, FloatArray]:
        """Sliding p99 over windows of ``window_ops`` completions.

        Returns ``(window_start_cycles, window_end_cycles, p99_us)``
        where window *i* covers completions ``[i, i + window_ops)`` in
        completion order.  Empty arrays when there are fewer completions
        than one window.
        """
        cycles, lats = self.completion_order()
        n = cycles.size
        if n < window_ops or window_ops <= 0:
            empty_i: IntArray = np.zeros(0, dtype=np.int64)
            empty_f: FloatArray = np.zeros(0, dtype=np.float64)
            return empty_i, empty_i.copy(), empty_f
        n_windows = n - window_ops + 1
        starts = cycles[:n_windows]
        ends = cycles[window_ops - 1 :]
        windows = np.lib.stride_tricks.sliding_window_view(lats, window_ops)
        p99: FloatArray = np.asarray(
            np.percentile(windows, 99.0, axis=1), dtype=np.float64
        )
        return starts, ends, p99


def rto_cycles(
    tracker: SloTracker,
    fault_cycle: int,
    slo_us: float,
    window_ops: int = 64,
) -> Optional[int]:
    """Recovery-time objective after a fault at ``fault_cycle``.

    Cycles from the fault until the first sliding window of
    ``window_ops`` completions that (a) consists entirely of ops
    completed at or after the fault and (b) has p99 within ``slo_us``,
    *after the tail's last post-fault SLO breach*.  The dent may lag
    the fault stamp — a shard fail-stop only hurts the tail once the
    failure detector fires and deferred ops drain — so recovery is
    measured past every breach, not just the first clean window.
    ``None`` when the run never recovered (or ended before one clean
    post-fault window accumulated).  ``0`` when no post-fault window
    ever breached: the fault did not dent the tail.
    """
    starts, ends, p99 = tracker.windowed_p99(window_ops)
    if starts.size == 0:
        return None
    post = starts >= fault_cycle
    if not post.any():
        return None
    ok = post & (p99 <= slo_us)
    breached = np.flatnonzero(post & (p99 > slo_us))
    if breached.size == 0:
        return 0
    recovered = np.flatnonzero(ok & (np.arange(p99.size) > breached[-1]))
    if recovered.size == 0:
        return None
    return max(0, int(ends[recovered[0]]) - fault_cycle)
