"""Admission control for the bounded ingest queue.

An open-loop client does not slow down when the server falls behind —
without admission control the ingest queue grows without bound and every
op's latency with it.  A policy decides, per arriving operation, whether
to enqueue it or shed it, given the current queue depth; the simulator
accounts every shed op as lost goodput and every admitted op's queueing
delay into its latency.

Policies (factory names in :data:`ADMISSION_NAMES`):

* ``none``      — :class:`AdmitAll`: unbounded queue, the divergence
  baseline every bounded policy is compared against;
* ``drop-tail`` — :class:`DropTail`: admit until the queue is full, then
  drop;
* ``watermark`` — :class:`WatermarkShedding`: shed probabilistically
  above a low watermark, ramping to certain-drop at the cap (random
  early detection, seeded);
* ``token-bucket`` — :class:`TokenBucket`: rate-limit admissions to a
  sustained fill rate with bounded burst credit, independent of queue
  depth (plus a hard cap as a backstop).
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.errors import ConfigError

#: CLI / factory names, in presentation order.
ADMISSION_NAMES: Tuple[str, ...] = (
    "none",
    "drop-tail",
    "watermark",
    "token-bucket",
)


class AdmissionPolicy(abc.ABC):
    """Per-op admit/shed decision against the current queue depth."""

    name: str = "admission"

    @abc.abstractmethod
    def admit(self, now_cycle: int, queue_depth: int) -> bool:
        """True to enqueue the op arriving at ``now_cycle``."""

    def reset(self) -> None:
        """Restore initial state (fresh run of the same policy object)."""


class AdmitAll(AdmissionPolicy):
    """Unbounded queue: never sheds.  The graceful-degradation control."""

    name = "none"

    def admit(self, now_cycle: int, queue_depth: int) -> bool:
        return True


class DropTail(AdmissionPolicy):
    """Admit while the queue holds fewer than ``capacity`` ops."""

    name = "drop-tail"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive: {capacity}")
        self.capacity = capacity

    def admit(self, now_cycle: int, queue_depth: int) -> bool:
        return queue_depth < self.capacity


class WatermarkShedding(AdmissionPolicy):
    """Probabilistic shedding above a watermark (seeded RED).

    Below ``watermark * capacity`` everything is admitted; between the
    watermark and the cap the drop probability ramps linearly from 0 to
    1; at or above the cap everything is dropped.  The coin flips come
    from a seeded generator so a run replays exactly.
    """

    name = "watermark"

    def __init__(self, capacity: int, watermark: float = 0.5, seed: int = 0):
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive: {capacity}")
        if not 0.0 < watermark < 1.0:
            raise ConfigError(f"watermark must be in (0, 1): {watermark}")
        self.capacity = capacity
        self.watermark = watermark
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def admit(self, now_cycle: int, queue_depth: int) -> bool:
        low = self.watermark * self.capacity
        if queue_depth < low:
            return True
        if queue_depth >= self.capacity:
            return False
        drop_p = (queue_depth - low) / (self.capacity - low)
        return bool(self._rng.random() >= drop_p)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)


class TokenBucket(AdmissionPolicy):
    """Rate limiter: ``fill_rate`` tokens/cycle, ``burst`` token cap.

    Admission costs one token; tokens accrue with simulated time, so a
    burst beyond the credit is shed regardless of queue depth.  A hard
    queue cap backstops the case where the admitted rate still exceeds
    service capacity for long stretches.
    """

    name = "token-bucket"

    def __init__(self, fill_rate_per_cycle: float, burst: int, capacity: int):
        if fill_rate_per_cycle <= 0:
            raise ConfigError(
                f"token fill rate must be positive: {fill_rate_per_cycle}"
            )
        if burst <= 0:
            raise ConfigError(f"token burst must be positive: {burst}")
        if capacity <= 0:
            raise ConfigError(f"queue capacity must be positive: {capacity}")
        self.fill_rate_per_cycle = fill_rate_per_cycle
        self.burst = burst
        self.capacity = capacity
        self._tokens = float(burst)
        self._last_cycle = 0

    def admit(self, now_cycle: int, queue_depth: int) -> bool:
        elapsed = max(0, now_cycle - self._last_cycle)
        self._last_cycle = max(self._last_cycle, now_cycle)
        self._tokens = min(
            float(self.burst), self._tokens + elapsed * self.fill_rate_per_cycle
        )
        if queue_depth >= self.capacity:
            return False
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def reset(self) -> None:
        self._tokens = float(self.burst)
        self._last_cycle = 0


def make_admission(
    name: str,
    capacity: int,
    *,
    watermark: float = 0.5,
    seed: int = 0,
    fill_rate_per_cycle: float = 0.0,
    burst: int = 0,
) -> AdmissionPolicy:
    """Factory behind ``repro serve --admission``."""
    if name == "none":
        return AdmitAll()
    if name == "drop-tail":
        return DropTail(capacity)
    if name == "watermark":
        return WatermarkShedding(capacity, watermark=watermark, seed=seed)
    if name == "token-bucket":
        if fill_rate_per_cycle <= 0 or burst <= 0:
            raise ConfigError(
                "token-bucket admission needs fill_rate_per_cycle > 0 "
                f"and burst > 0 (got {fill_rate_per_cycle}, {burst})"
            )
        return TokenBucket(fill_rate_per_cycle, burst, capacity)
    raise ConfigError(
        f"unknown admission policy {name!r}; expected one of {ADMISSION_NAMES}"
    )
