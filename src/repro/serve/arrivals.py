"""Seeded arrival processes: when each operation reaches the ingest queue.

An arrival process turns a workload's operation stream into an open-loop
request timeline: operation *i* arrives at ``arrival_cycles[i]`` (in
accelerator clock cycles), independent of when the server gets around to
it.  Offered load is set in operations per *simulated* second; everything
is a pure function of ``(seed, rate, n_ops)``, so a sweep row is exactly
replayable.

Three generators cover the serving regimes the SLO harness cares about:

* :class:`PoissonProcess` — memoryless arrivals, the M/·/1 baseline;
* :class:`MmppProcess`    — a two-state Markov-modulated Poisson process
  alternating bursty and quiet phases with the same long-run rate, the
  classic stressor for size-or-deadline batch formers;
* :class:`DiurnalProcess` — a sinusoidal rate ramp (one "day" over the
  stream), modelling slow load swings rather than burst noise.
"""

from __future__ import annotations

import abc
import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigError

#: CLI / factory names, in presentation order.
ARRIVAL_NAMES: Tuple[str, ...] = ("poisson", "bursty", "diurnal")


def _check_rate(rate_ops_per_s: float, clock_hz: float) -> None:
    if rate_ops_per_s <= 0:
        raise ConfigError(f"offered load must be positive: {rate_ops_per_s}")
    if clock_hz <= 0:
        raise ConfigError(f"clock_hz must be positive: {clock_hz}")


def _check_n_ops(n_ops: int) -> None:
    # Zero ops is a legitimate empty stream; a negative count means the
    # caller's duration arithmetic went wrong — refuse it loudly rather
    # than return an empty timeline that silently "serves" nothing.
    if n_ops < 0:
        raise ConfigError(f"n_ops must be non-negative: {n_ops}")


class ArrivalProcess(abc.ABC):
    """Generates one arrival cycle per operation, seeded and replayable."""

    name: str = "arrivals"

    @abc.abstractmethod
    def arrival_cycles(
        self,
        n_ops: int,
        rate_ops_per_s: float,
        clock_hz: float,
        seed: int,
    ) -> np.ndarray:
        """Non-decreasing int64 arrival cycles for ``n_ops`` operations."""

    @staticmethod
    def _integrate(inter_cycles: np.ndarray) -> np.ndarray:
        """Cumulative arrival times, floored to whole cycles."""
        return np.floor(np.cumsum(inter_cycles)).astype(np.int64)


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant offered rate."""

    name = "poisson"

    def arrival_cycles(
        self, n_ops: int, rate_ops_per_s: float, clock_hz: float, seed: int
    ) -> np.ndarray:
        _check_rate(rate_ops_per_s, clock_hz)
        _check_n_ops(n_ops)
        if n_ops == 0:
            return np.zeros(0, dtype=np.int64)
        rng = np.random.default_rng(seed)
        mean_cycles = clock_hz / rate_ops_per_s
        return self._integrate(rng.exponential(mean_cycles, size=n_ops))


class MmppProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty arrivals).

    The stream alternates *hot* phases at ``burst_factor`` times the
    nominal rate with *cold* phases slowed so the long-run average stays
    at the requested rate (the cold rate is the harmonic complement,
    ``burst_factor * rate / (2 * burst_factor - 1)``).  Phase lengths are
    geometric with mean ``mean_phase_ops``, drawn from the seed.
    """

    name = "bursty"

    def __init__(self, burst_factor: float = 4.0, mean_phase_ops: int = 256):
        if burst_factor <= 1.0:
            raise ConfigError(
                f"burst_factor must exceed 1: {burst_factor}"
            )
        if mean_phase_ops <= 0:
            raise ConfigError(
                f"mean_phase_ops must be positive: {mean_phase_ops}"
            )
        self.burst_factor = burst_factor
        self.mean_phase_ops = mean_phase_ops

    def arrival_cycles(
        self, n_ops: int, rate_ops_per_s: float, clock_hz: float, seed: int
    ) -> np.ndarray:
        _check_rate(rate_ops_per_s, clock_hz)
        _check_n_ops(n_ops)
        if n_ops == 0:
            return np.zeros(0, dtype=np.int64)
        rng = np.random.default_rng(seed)
        hot_rate = self.burst_factor * rate_ops_per_s
        cold_rate = (
            self.burst_factor * rate_ops_per_s / (2 * self.burst_factor - 1)
        )
        inter = np.empty(n_ops, dtype=np.float64)
        produced = 0
        hot = bool(rng.integers(0, 2))
        while produced < n_ops:
            phase_len = min(
                int(rng.geometric(1.0 / self.mean_phase_ops)),
                n_ops - produced,
            )
            rate = hot_rate if hot else cold_rate
            inter[produced : produced + phase_len] = rng.exponential(
                clock_hz / rate, size=phase_len
            )
            produced += phase_len
            hot = not hot
        return self._integrate(inter)


class DiurnalProcess(ArrivalProcess):
    """Sinusoidal rate ramp: one full period over the operation stream.

    The instantaneous rate follows ``1 + depth * sin(2*pi*i/n)``, scaled
    by ``1 / sqrt(1 - depth**2)`` — the harmonic mean of the sinusoid —
    so the long-run average rate stays at the requested one (same
    correction the MMPP's cold phase applies).  A slow swell and trough
    rather than burst noise, so admission control sees sustained
    pressure build up.
    """

    name = "diurnal"

    def __init__(self, depth: float = 0.6):
        if not 0.0 < depth < 1.0:
            raise ConfigError(f"diurnal depth must be in (0, 1): {depth}")
        self.depth = depth

    def arrival_cycles(
        self, n_ops: int, rate_ops_per_s: float, clock_hz: float, seed: int
    ) -> np.ndarray:
        _check_rate(rate_ops_per_s, clock_hz)
        _check_n_ops(n_ops)
        if n_ops == 0:
            return np.zeros(0, dtype=np.int64)
        rng = np.random.default_rng(seed)
        phase = 2.0 * math.pi * np.arange(n_ops) / n_ops
        harmonic_mean = math.sqrt(1.0 - self.depth**2)
        rates = (
            rate_ops_per_s
            * (1.0 + self.depth * np.sin(phase))
            / harmonic_mean
        )
        inter = rng.exponential(1.0, size=n_ops) * (clock_hz / rates)
        return self._integrate(inter)


def make_arrivals(name: str, **kwargs: float) -> ArrivalProcess:
    """Factory behind ``repro serve --arrival``."""
    if name == "poisson":
        return PoissonProcess()
    if name == "bursty":
        burst = kwargs.get("burst_factor", 4.0)
        return MmppProcess(burst_factor=float(burst))
    if name == "diurnal":
        depth = kwargs.get("depth", 0.6)
        return DiurnalProcess(depth=float(depth))
    raise ConfigError(
        f"unknown arrival process {name!r}; expected one of {ARRIVAL_NAMES}"
    )
