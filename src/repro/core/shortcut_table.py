"""The Shortcut_Table and its on-chip buffer (paper §III-C).

A *shortcut* is a cached partial-key-matching result:
``<Key_ID, Address_Target_Node, Address_Parent_Node>``.  The full table
is a hash map in off-chip memory; a 128 KB on-chip Shortcut_buffer keeps
the recently used entries so that the SOU's ``Index_Shortcut`` stage
usually resolves in BRAM.

Staleness: tree mutations (splits, grows, merges) free nodes, so a
shortcut can point at a dead address.  The accelerator validates every
hit against the live tree (the fetched "node" must still be the leaf for
the shortcut's key) and repairs the entry after re-traversal — the same
detect-and-regenerate behaviour §III-C describes for node-type changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import SHORTCUT_ENTRY_BYTES
from repro.core.lru_buffer import LruBuffer


@dataclass(slots=True)
class ShortcutEntry:
    """One Shortcut_Table row."""

    key: bytes
    target_address: int
    parent_address: Optional[int]
    #: Set by the fault injector: the addresses were tampered with, so a
    #: hit will fail validation and trigger the SOU's retry-then-repair
    #: path (see :mod:`repro.faults.injector`).
    corrupted: bool = False


class ShortcutTable:
    """Off-chip hash table + on-chip LRU buffer of shortcut entries."""

    def __init__(self, buffer_bytes: int):
        self._entries: Dict[bytes, ShortcutEntry] = {}
        self.buffer = LruBuffer(buffer_bytes)
        self.generated = 0
        self.updated = 0
        self.stale_hits = 0
        self.corrupted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entry_keys(self):
        """Live entry keys (the fault injector samples its victims here)."""
        return self._entries.keys()

    def corrupt(self, key: bytes) -> bool:
        """Tamper with an entry so its addresses dangle (fault injection).

        The corrupted addresses are a deterministic function of the
        originals (bit-flipped into the negative range, which the bump
        allocator never issues), so the same schedule always produces
        the same broken table.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.target_address = -entry.target_address - 1
        if entry.parent_address is not None:
            entry.parent_address = -entry.parent_address - 1
        entry.corrupted = True
        self.corrupted += 1
        return True

    def lookup(self, key: bytes) -> tuple:
        """Probe for ``key``.

        Returns ``(entry_or_None, on_chip)`` where ``on_chip`` says the
        probe was satisfied by the Shortcut_buffer (2-cycle path) rather
        than the off-chip table (HBM-latency path).
        """
        on_chip = self.buffer.lookup(key)
        entry = self._entries.get(key)
        if entry is not None and not on_chip:
            # Off-chip hit pulls the entry on chip for reuse.
            self.buffer.insert(key, SHORTCUT_ENTRY_BYTES)
        return entry, on_chip

    def generate(
        self, key: bytes, target_address: int, parent_address: Optional[int]
    ) -> ShortcutEntry:
        """``Generate_Shortcut`` stage: create or refresh an entry."""
        existing = self._entries.get(key)
        entry = ShortcutEntry(key, target_address, parent_address)
        self._entries[key] = entry
        if existing is None:
            self.generated += 1
        else:
            self.updated += 1
        self.buffer.insert(key, SHORTCUT_ENTRY_BYTES)
        return entry

    def note_stale(self, key: bytes) -> None:
        """Record a hit that failed validation (dangling address)."""
        self.stale_hits += 1
        self._entries.pop(key, None)
        self.buffer.remove(key)

    def drop(self, key: bytes) -> None:
        """Remove a shortcut (e.g. its key was deleted)."""
        self._entries.pop(key, None)
        self.buffer.remove(key)

    @property
    def buffer_hit_rate(self) -> float:
        return self.buffer.hit_rate

    def report_metrics(self, registry) -> None:
        """Write the table's run totals into a MetricsRegistry."""
        registry.counter("shortcut_table.generated", self.generated)
        registry.counter("shortcut_table.updated", self.updated)
        registry.counter("shortcut_table.stale_hits", self.stale_hits)
        registry.counter("shortcut_table.corrupted", self.corrupted)
        registry.gauge("shortcut_table.entries", len(self._entries))
        registry.counter("shortcut_table.buffer_hits", self.buffer.hits)
        registry.counter("shortcut_table.buffer_misses", self.buffer.misses)
        registry.counter("shortcut_table.buffer_evictions", self.buffer.evictions)
        registry.gauge("shortcut_table.buffer_hit_rate", self.buffer.hit_rate)
