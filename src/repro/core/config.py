"""DCART configuration — the parameters of Table I.

    Compute units   1 x PCU, 1 x Dispatcher, 16 x SOUs
    On-chip memory  Scan_buffer    512 KB
                    Bucket_buffer    2 MB
                    Shortcut_buffer 128 KB
                    Tree_buffer      4 MB
    Clock           230 MHz (Vivado-reported, used conservatively)

``batch_size`` is the unit of PCU/SOU overlap (§III-D); the paper does
not publish the RTL value, so it defaults to a Scan_buffer-sized batch
(512 KB / 16 B per queued operation = 32 Ki ops) and is sweepable in the
ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.model.costs import DEFAULT_FPGA_COSTS, FpgaCosts

KIB = 1024
MIB = 1024 * 1024

#: Bytes one queued operation occupies in the scan/bucket streams
#: (8-byte key/key-id, 8-byte value/opcode word).
OP_RECORD_BYTES = 16
#: Bytes of one Shortcut_Table entry: <Key_ID, Addr_Target, Addr_Parent>.
SHORTCUT_ENTRY_BYTES = 24


@dataclass
class DCARTConfig:
    """Table I, plus the model knobs the paper leaves to the RTL."""

    n_sous: int = 16
    n_buckets: int = 16
    scan_buffer_bytes: int = 512 * KIB
    bucket_buffer_bytes: int = 2 * MIB
    shortcut_buffer_bytes: int = 128 * KIB
    tree_buffer_bytes: int = 4 * MIB
    batch_size: Optional[int] = None      # default: scan-buffer capacity
    prefix_byte_offset: Optional[int] = None  # None = auto-calibrate
    costs: FpgaCosts = field(default_factory=lambda: DEFAULT_FPGA_COSTS)
    # Ablation switches (all True = the paper's DCART).
    enable_shortcuts: bool = True
    enable_combining: bool = True
    enable_overlap: bool = True
    value_aware_tree_buffer: bool = True
    # Simulation-engine switch (not a hardware knob): process buckets
    # through the vectorized level-wise SOU (core/vec.py) instead of the
    # scalar per-op loop.  Bit-identical results, much faster host time.
    vectorized: bool = False

    def __post_init__(self):
        if self.n_sous <= 0:
            raise ConfigError(f"n_sous must be positive: {self.n_sous}")
        if self.n_buckets <= 0:
            raise ConfigError(f"n_buckets must be positive: {self.n_buckets}")
        if self.n_buckets % self.n_sous and self.n_sous % self.n_buckets:
            raise ConfigError(
                f"n_buckets ({self.n_buckets}) and n_sous ({self.n_sous}) "
                "must divide one another for the static dispatcher"
            )
        for name in (
            "scan_buffer_bytes",
            "bucket_buffer_bytes",
            "shortcut_buffer_bytes",
            "tree_buffer_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.batch_size is None:
            self.batch_size = self.scan_buffer_bytes // OP_RECORD_BYTES
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive: {self.batch_size}")

    @property
    def shortcut_buffer_entries(self) -> int:
        return self.shortcut_buffer_bytes // SHORTCUT_ENTRY_BYTES

    def describe(self) -> str:
        """Render Table I (the bench for Table I prints this)."""
        lines = [
            "DCART configuration (paper Table I)",
            f"  Compute units : 1 x PCU, 1 x Dispatcher, {self.n_sous} x SOUs",
            f"  Scan_buffer   : {self.scan_buffer_bytes // KIB} KB",
            f"  Bucket_buffer : {self.bucket_buffer_bytes // MIB} MB",
            f"  Shortcut_buffer: {self.shortcut_buffer_bytes // KIB} KB",
            f"  Tree_buffer   : {self.tree_buffer_bytes // MIB} MB",
            f"  Clock         : {self.costs.clock_hz / 1e6:.0f} MHz",
            f"  Batch size    : {self.batch_size} ops",
        ]
        return "\n".join(lines)
