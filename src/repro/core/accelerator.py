"""The DCART accelerator top level (paper Fig. 4).

:class:`DcartAccelerator` wires the hardware units together and runs a
workload end to end:

1. **Calibrate** the prefix extractor on a key sample (§III-B's default —
   the key's first byte — where that byte discriminates; the first
   useful byte otherwise, reported in ``extra['prefix_byte_offset']``).
2. Per batch: the **PCU** combines operations into the 16 Bucket_Tables,
   the **Dispatcher** hands buckets to SOUs with their value estimates,
   and each **SOU** executes its buckets against the live ART through the
   Shortcut_Table and the value-aware Tree_buffer.
3. Cross-bucket structural writes (mutations of ancestors shared by
   several buckets) are the only operations requiring synchronisation;
   they serialise on a global lock — DCART's small residual in Fig. 7.
4. Batch cycles are ``max(slowest SOU, HBM bandwidth floor)`` plus the
   residual sync; the run composes batches with the §III-D overlap.

Ablation switches on :class:`~repro.core.config.DCARTConfig` disable
shortcuts, combining, the overlap, or value-aware buffering — each
reverts one §III design decision for the ablation benchmarks.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional

import numpy as np

from repro.art.stats import CACHE_LINE_BYTES
from repro.art.tree import AdaptiveRadixTree
from repro.core.batching import overlap_timeline
from repro.core.bucket_table import BucketTables
from repro.core.config import DCARTConfig, SHORTCUT_ENTRY_BYTES
from repro.core.dispatcher import DispatchedBucket, Dispatcher
from repro.core.pcu import PrefixCombiningUnit
from repro.core.prefixing import PrefixExtractor
from repro.core.shortcut_table import ShortcutTable
from repro.core.sou import BucketOutcome, ShortcutOperatingUnit
from repro.core.tree_buffer import LruTreeBuffer, ValueAwareTreeBuffer
from repro.durability.manager import accelerator_state as durability_accel_state
from repro.engines.base import Engine, RunResult, TimeBreakdown
from repro.model.platform import FPGA_PLATFORM, Platform
from repro.workloads.ops import Operation, Workload

#: Keys sampled from the loaded set for prefix calibration.
CALIBRATION_SAMPLE = 4096


def hbm_bandwidth_cycles(
    offchip_bytes: int, hbm_gb_s: float, clock_hz: float
) -> int:
    """Cycles the batch's off-chip traffic occupies the HBM channel.

    Ceil, not floor: a batch consuming any fraction of an HBM cycle
    still holds the channel for that whole cycle, so even one off-chip
    byte bills at least one cycle.
    """
    if offchip_bytes <= 0:
        return 0
    return math.ceil(offchip_bytes / (hbm_gb_s * 1e9) * clock_hz)


class DcartAccelerator(Engine):
    """DCART on the Alveo U280, as a deterministic cycle model."""

    name = "DCART"

    def __init__(
        self,
        platform: Platform = FPGA_PLATFORM,
        config: Optional[DCARTConfig] = None,
        injector=None,
        durability=None,
    ):
        super().__init__(platform)
        self.config = config if config is not None else DCARTConfig()
        #: Optional :class:`~repro.faults.FaultInjector` (chaos harness);
        #: ``None`` models the perfect machine.
        self.injector = injector
        #: Optional :class:`~repro.durability.DurabilityManager`: when
        #: set, every combined batch is WAL-logged *before* SOU dispatch
        #: (write-ahead), the tree + accelerator state checkpoint every N
        #: batches, and the log/fsync/checkpoint traffic is billed into
        #: the batch cycles.  ``None`` models the volatile machine.
        self.durability = durability

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        tree: Optional[AdaptiveRadixTree] = None,
        records=None,  # ignored: DCART's execution takes different paths
    ) -> RunResult:
        config = self.config
        costs = config.costs
        if tree is None:
            tree = self.build_tree(workload)
        result = self._new_result(workload)

        extractor = self._make_extractor(workload)
        tables = BucketTables(extractor, config.n_buckets, config.bucket_buffer_bytes)
        pcu = PrefixCombiningUnit(tables, costs)
        dispatcher = Dispatcher(config.n_sous)
        shortcuts = (
            ShortcutTable(config.shortcut_buffer_bytes)
            if config.enable_shortcuts
            else None
        )
        buffer_cls = (
            ValueAwareTreeBuffer if config.value_aware_tree_buffer else LruTreeBuffer
        )
        tree_buffer = buffer_cls(config.tree_buffer_bytes)
        injector = self.injector
        if injector is not None:
            injector.reset()
        durability = self.durability
        durability_cycles_total = 0
        if durability is not None:
            attach_seconds = durability.attach(tree)
            durability_cycles_total += int(attach_seconds * costs.clock_hz)
        sous = [
            ShortcutOperatingUnit(
                sou_id=i,
                tree=tree,
                shortcuts=shortcuts,
                tree_buffer=tree_buffer,
                costs=costs,
                shared_depth_bytes=extractor.byte_offset,
                injector=injector,
            )
            for i in range(config.n_sous)
        ]

        pcu_cycles: List[int] = []
        sou_cycles: List[int] = []
        batch_outcomes: List[List[BucketOutcome]] = []
        contentions = 0
        global_sync_ops = 0
        sync_cycles_total = 0
        offchip_lines_total = 0
        redispatch_cycles_total = 0

        for batch_index, batch in enumerate(
            workload.operations.batches(config.batch_size)
        ):
            tree_buffer.decay()
            if injector is not None:
                injector.start_batch(
                    batch_index, dispatcher, shortcuts, tree_buffer,
                    durability=durability,
                )
            if config.enable_combining:
                pcu_outcome = pcu.combine_batch(batch)
                dispatched = dispatcher.dispatch(tables)
                pcu_cycles.append(pcu_outcome.cycles)
            else:
                dispatched = self._round_robin(batch, dispatcher)
                pcu_cycles.append(0)

            # Write-ahead: the combined batch reaches the log (and its
            # COMMIT fsync point) before any SOU may mutate the tree.
            batch_durability_cycles = 0
            if durability is not None:
                wal_seconds = durability.log_batch(batch_index, batch)
                batch_durability_cycles += int(wal_seconds * costs.clock_hz)

            outcomes = [sous[b.sou_id].process_bucket(b) for b in dispatched]
            batch_outcomes.append(outcomes)

            per_sou: Dict[int, int] = {}
            batch_offchip_lines = 0
            for outcome in outcomes:
                per_sou[outcome.sou_id] = per_sou.get(outcome.sou_id, 0) + outcome.cycles
                batch_offchip_lines += outcome.offchip_lines
            compute_cycles = max(per_sou.values()) if per_sou else 0

            # Residual synchronisation: structural writes to shared
            # ancestors serialise on a global lock across SOUs.
            sync_targets: List[int] = []
            for outcome in outcomes:
                sync_targets.extend(outcome.global_sync_targets)
            batch_sync_cycles = len(sync_targets) * costs.global_sync_cycles
            counts = Counter(sync_targets)
            contentions += sum(c - 1 for c in counts.values() if c > 1)
            # Each shared-ancestor lock stalls the other active SOUs.
            active_sous = len({o.sou_id for o in outcomes})
            contentions += len(sync_targets) * max(0, active_sous - 1)
            # One contention per coalesced write group (single lock for
            # the whole group, vs. k-1 contentions operation-centric).
            contentions += sum(o.coalesced_contended_groups for o in outcomes)
            if not config.enable_combining:
                # Without combining, same-node writes land on different
                # SOUs and must synchronise like any shared write.
                extra = self._uncombined_conflicts(batch)
                contentions += extra
                batch_sync_cycles += extra * costs.global_sync_cycles
            global_sync_ops += len(sync_targets)
            sync_cycles_total += batch_sync_cycles

            # HBM bandwidth floor for the batch's off-chip traffic.
            offchip_bytes = batch_offchip_lines * CACHE_LINE_BYTES
            if shortcuts is not None:
                offchip_bytes += sum(o.shortcut_misses for o in outcomes) * (
                    SHORTCUT_ENTRY_BYTES
                )
            hbm_gb_s = costs.hbm_bandwidth_gb_s
            if injector is not None:
                # A throttle window narrows the effective HBM bandwidth.
                hbm_gb_s *= injector.bandwidth_factor()
            bandwidth_cycles = hbm_bandwidth_cycles(
                offchip_bytes, hbm_gb_s, costs.clock_hz
            )
            offchip_lines_total += batch_offchip_lines
            # Failover re-dispatch: the Dispatcher re-targets each of a
            # failed unit's buckets, serialised like any dispatch step.
            redispatch_cycles = (
                dispatcher.failovers_last_batch * costs.redispatch_cycles
            )
            redispatch_cycles_total += redispatch_cycles
            # The batch is fully applied: checkpoint if one is due.
            if durability is not None:
                ckpt_seconds = durability.maybe_checkpoint(
                    batch_index, tree,
                    accel_state=durability_accel_state(shortcuts, tables),
                )
                batch_durability_cycles += int(ckpt_seconds * costs.clock_hz)
                durability_cycles_total += batch_durability_cycles
            batch_cycles = (
                max(compute_cycles, bandwidth_cycles)
                + batch_sync_cycles
                + redispatch_cycles
                + batch_durability_cycles
            )
            sou_cycles.append(batch_cycles)
            if injector is not None:
                injector.end_batch(batch_index, len(batch), batch_cycles, per_sou)

        timeline = overlap_timeline(pcu_cycles, sou_cycles, config.enable_overlap)
        elapsed = timeline.total_cycles * costs.cycle_seconds

        self._aggregate(result, batch_outcomes, pcu_cycles, costs)
        result.cache_hit_rate = tree_buffer.hit_rate
        result.elapsed_seconds = elapsed
        result.lock_contentions = contentions
        result.lock_acquisitions = global_sync_ops
        result.energy_joules = self.platform.energy_joules(elapsed)

        sync_seconds = sync_cycles_total * costs.cycle_seconds
        unhidden_pcu = (
            timeline.pcu_total_cycles - timeline.hidden_cycles
        ) * costs.cycle_seconds
        result.breakdown = TimeBreakdown(
            traverse_seconds=max(0.0, elapsed - sync_seconds - unhidden_pcu),
            sync_seconds=min(sync_seconds, elapsed),
            other_seconds=min(unhidden_pcu, max(0.0, elapsed - sync_seconds)),
        )
        result.extra.update(
            {
                "prefix_byte_offset": extractor.byte_offset,
                "tree_buffer_hit_rate": tree_buffer.hit_rate,
                "shortcut_buffer_hit_rate": (
                    shortcuts.buffer_hit_rate if shortcuts else 0.0
                ),
                "shortcut_entries": len(shortcuts) if shortcuts else 0,
                "stale_shortcuts": (shortcuts.stale_hits if shortcuts else 0),
                "hidden_pcu_cycles": timeline.hidden_cycles,
                "overlap_efficiency": timeline.overlap_efficiency,
                "total_cycles": timeline.total_cycles,
                "offchip_lines": offchip_lines_total,
                "global_sync_ops": global_sync_ops,
                "spilled_bytes": tables.spilled_bytes,
            }
        )
        if injector is not None:
            result.extra.update(injector.snapshot())
            result.extra["failover_buckets"] = dispatcher.failovers
            result.extra["redispatch_cycles"] = redispatch_cycles_total
            result.extra["stale_shortcut_repairs"] = sum(
                o.stale_shortcuts for os in batch_outcomes for o in os
            )
        if durability is not None:
            result.extra.update(durability.snapshot())
            result.extra["durability_cycles"] = durability_cycles_total
            durability.close()
        return result

    # ------------------------------------------------------------------

    def _make_extractor(self, workload: Workload) -> PrefixExtractor:
        if self.config.prefix_byte_offset is not None:
            return PrefixExtractor(
                self.config.prefix_byte_offset, self.config.n_buckets
            )
        sample = workload.loaded_keys[:CALIBRATION_SAMPLE]
        return PrefixExtractor.calibrate(sample, self.config.n_buckets)

    def _round_robin(
        self, batch: List[Operation], dispatcher: Dispatcher
    ) -> List[DispatchedBucket]:
        """No-combining ablation: arrival order, round-robin over SOUs.

        Routing still goes through the dispatcher so fail-stopped units
        are skipped (their slices fail over like any bucket would).
        """
        per_sou: List[List[Operation]] = [[] for _ in range(self.config.n_sous)]
        for i, op in enumerate(batch):
            per_sou[i % self.config.n_sous].append(op)
        dispatcher.failovers_last_batch = 0
        out: List[DispatchedBucket] = []
        for i, ops in enumerate(per_sou):
            if not ops:
                continue
            sou_id = dispatcher.route(i)
            if sou_id != i:
                dispatcher.failovers += 1
                dispatcher.failovers_last_batch += 1
            out.append(
                DispatchedBucket(
                    bucket_id=i, sou_id=sou_id, operations=ops, value=len(ops)
                )
            )
        return out

    @staticmethod
    def _uncombined_conflicts(batch: List[Operation]) -> int:
        """Same-key write collisions within an uncombined batch."""
        writers: Counter = Counter()
        touched: Counter = Counter()
        for op in batch:
            touched[op.key] += 1
            if op.kind.is_write:
                writers[op.key] += 1
        return sum(
            touched[key] - 1 for key, count in writers.items() if touched[key] > 1
        )

    def _aggregate(
        self,
        result: RunResult,
        batch_outcomes: List[List[BucketOutcome]],
        pcu_cycles: List[int],
        costs,
    ) -> None:
        id_chunks: List[np.ndarray] = []
        cycle_chunks: List[np.ndarray] = []
        matches = visited = fetched = used = 0
        shortcut_hits = shortcut_misses = traversals = 0
        counts = result.node_access_counts
        for batch_index, outcomes in enumerate(batch_outcomes):
            # Latency of an op = waiting for its batch to be combined,
            # plus its completion offset within its SOU's queue.
            start = pcu_cycles[batch_index]
            for outcome in outcomes:
                matches += outcome.partial_key_matches
                visited += outcome.nodes_visited
                fetched += outcome.bytes_fetched
                used += outcome.bytes_used
                shortcut_hits += outcome.shortcut_hits
                shortcut_misses += outcome.shortcut_misses
                traversals += outcome.traversals
                # One counting pass over the raw visit list per bucket;
                # the distinct-node set falls out as the Counter's keys.
                counts.update(outcome.visited_ids)
                if outcome.op_ids:
                    id_chunks.append(
                        np.asarray(outcome.op_ids, dtype=np.int64)
                    )
                    cycle_chunks.append(
                        np.asarray(outcome.completion_cycles, dtype=np.int64)
                        + start
                    )
        result.partial_key_matches = matches
        result.nodes_visited = visited
        result.distinct_nodes_visited = len(counts)
        result.bytes_fetched = fetched
        result.bytes_used = used
        result.extra["shortcut_hits"] = shortcut_hits
        result.extra["shortcut_misses"] = shortcut_misses
        result.extra["traversals"] = traversals
        if id_chunks:
            # op_ids are unique across the run, so a stable argsort on
            # them reproduces exactly the old (op_id, latency) tuple
            # sort; cycle counts stay integers until the final float
            # multiply, which matches the scalar path bit-for-bit.
            op_ids = np.concatenate(id_chunks)
            completion = np.concatenate(cycle_chunks)
            order = np.argsort(op_ids, kind="stable")
            result.latencies_ns = (
                completion[order] * costs.cycle_seconds
            ) * 1e9
        else:
            result.latencies_ns = np.zeros(0)
