"""The DCART accelerator top level (paper Fig. 4).

:class:`DcartAccelerator` wires the hardware units together and runs a
workload end to end:

1. **Calibrate** the prefix extractor on a key sample (§III-B's default —
   the key's first byte — where that byte discriminates; the first
   useful byte otherwise, reported in ``extra['prefix_byte_offset']``).
2. Per batch: the **PCU** combines operations into the 16 Bucket_Tables,
   the **Dispatcher** hands buckets to SOUs with their value estimates,
   and each **SOU** executes its buckets against the live ART through the
   Shortcut_Table and the value-aware Tree_buffer.
3. Cross-bucket structural writes (mutations of ancestors shared by
   several buckets) are the only operations requiring synchronisation;
   they serialise on a global lock — DCART's small residual in Fig. 7.
4. Batch cycles are ``max(slowest SOU, HBM bandwidth floor)`` plus the
   residual sync; the run composes batches with the §III-D overlap.

Ablation switches on :class:`~repro.core.config.DCARTConfig` disable
shortcuts, combining, the overlap, or value-aware buffering — each
reverts one §III design decision for the ablation benchmarks.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.art.stats import CACHE_LINE_BYTES
from repro.art.tree import AdaptiveRadixTree
from repro.core.batching import overlap_timeline
from repro.core.bucket_table import BucketTables
from repro.core.config import DCARTConfig, SHORTCUT_ENTRY_BYTES
from repro.core.dispatcher import DispatchedBucket, Dispatcher
from repro.core.pcu import PrefixCombiningUnit
from repro.core.prefixing import PrefixExtractor
from repro.core.shortcut_table import ShortcutTable
from repro.core.sou import BucketOutcome, ShortcutOperatingUnit
from repro.core.tree_buffer import LruTreeBuffer, ValueAwareTreeBuffer
from repro.durability.manager import accelerator_state as durability_accel_state
from repro.engines.base import Engine, RunResult, TimeBreakdown
from repro.model.costs import DEFAULT_FPGA_COSTS
from repro.model.platform import FPGA_PLATFORM, Platform
from repro.obs.metrics import MetricsRegistry, extra_view
from repro.obs.trace import BatchSample
from repro.workloads.ops import Operation, Workload

#: Keys sampled from the loaded set for prefix calibration.
CALIBRATION_SAMPLE = 4096


def hbm_bandwidth_cycles(
    offchip_bytes: int,
    hbm_gb_s: float,
    clock_hz: float,
    blackout_cycles_per_line: Optional[int] = None,
) -> int:
    """Cycles the batch's off-chip traffic occupies the HBM channel.

    Ceil, not floor: a batch consuming any fraction of an HBM cycle
    still holds the channel for that whole cycle, so even one off-chip
    byte bills at least one cycle.

    ``hbm_gb_s <= 0`` models a full channel blackout (a chaos
    ``bandwidth_factor()`` of 0): instead of dividing by zero, every
    off-chip cache line stalls for ``blackout_cycles_per_line`` —
    ``FpgaCosts.hbm_blackout_cycles_per_line`` when not given.
    """
    if offchip_bytes <= 0:
        return 0
    if hbm_gb_s <= 0.0:
        if blackout_cycles_per_line is None:
            blackout_cycles_per_line = (
                DEFAULT_FPGA_COSTS.hbm_blackout_cycles_per_line
            )
        lines = math.ceil(offchip_bytes / CACHE_LINE_BYTES)
        return lines * blackout_cycles_per_line
    return math.ceil(offchip_bytes / (hbm_gb_s * 1e9) * clock_hz)


@dataclass
class BatchExecution:
    """What one executed batch cost and produced.

    The unit of work both execution modes share: the closed-loop
    :meth:`DcartAccelerator.run` accumulates these into a
    :class:`~repro.engines.base.RunResult`, and the open-loop serving
    simulator (:mod:`repro.serve`) prices queueing delay on top of them.
    ``service_cycles`` is the batch's full SOU-side bill — compute vs.
    HBM floor, plus sync, redispatch, and durability — while
    ``pcu_cycles`` is the combining time that precedes SOU dispatch.
    """

    batch_index: int
    n_ops: int
    pcu_cycles: int
    service_cycles: int
    compute_cycles: int
    bandwidth_cycles: int
    sync_cycles: int
    redispatch_cycles: int
    durability_cycles: int
    outcomes: List[BucketOutcome]
    per_sou: Dict[int, int]


class AcceleratorSession:
    """The per-batch execution state of one DCART run.

    Owns the hardware units (PCU, Dispatcher, SOUs, Shortcut_Table,
    Tree_buffer) and every cross-batch accumulator, and executes one
    combined batch at a time via :meth:`execute_batch`.  Two drivers use
    it: :meth:`DcartAccelerator.run` drains a fixed workload closed-loop
    (batches of ``config.batch_size``, results bit-identical to the
    pre-session implementation), and the open-loop serving simulator
    feeds it batches formed by arrival time and deadline.  The caller is
    responsible for resetting the injector before the first batch and
    for closing the durability manager when done.
    """

    def __init__(
        self,
        accelerator: "DcartAccelerator",
        workload: Workload,
        tree: AdaptiveRadixTree,
    ):
        config = accelerator.config
        self.config = config
        self.costs = config.costs
        self.tree = tree
        self.extractor = accelerator._make_extractor(workload)
        self.tables = BucketTables(
            self.extractor, config.n_buckets, config.bucket_buffer_bytes
        )
        self.pcu = PrefixCombiningUnit(self.tables, self.costs)
        self.dispatcher = Dispatcher(config.n_sous)
        self.shortcuts = (
            ShortcutTable(config.shortcut_buffer_bytes)
            if config.enable_shortcuts
            else None
        )
        buffer_cls = (
            ValueAwareTreeBuffer if config.value_aware_tree_buffer else LruTreeBuffer
        )
        self.tree_buffer = buffer_cls(config.tree_buffer_bytes)
        self.injector = accelerator.injector
        telemetry = accelerator.telemetry
        self.tracer = telemetry.tracer if telemetry is not None else None
        self.durability = accelerator.durability
        self.durability_cycles_total = 0
        if self.durability is not None:
            attach_seconds = self.durability.attach(tree)
            self.durability_cycles_total += int(attach_seconds * self.costs.clock_hz)
        if config.vectorized:
            from repro.core.vec import VecContext, VectorizedOperatingUnit

            vec_ctx = VecContext(tree)
            self.sous = [
                VectorizedOperatingUnit(
                    sou_id=i,
                    tree=tree,
                    shortcuts=self.shortcuts,
                    tree_buffer=self.tree_buffer,
                    costs=self.costs,
                    shared_depth_bytes=self.extractor.byte_offset,
                    injector=self.injector,
                    vec_ctx=vec_ctx,
                )
                for i in range(config.n_sous)
            ]
        else:
            self.sous = [
                ShortcutOperatingUnit(
                    sou_id=i,
                    tree=tree,
                    shortcuts=self.shortcuts,
                    tree_buffer=self.tree_buffer,
                    costs=self.costs,
                    shared_depth_bytes=self.extractor.byte_offset,
                    injector=self.injector,
                )
                for i in range(config.n_sous)
            ]
        # Cross-batch accumulators (read by the drivers at finalise time).
        self.contentions = 0
        self.global_sync_ops = 0
        self.sync_cycles_total = 0
        self.offchip_lines_total = 0
        self.redispatch_cycles_total = 0
        self.batches_executed = 0

    # ------------------------------------------------------------------

    def execute_batch(
        self, batch: List[Operation], batch_index: int
    ) -> BatchExecution:
        """Combine, dispatch, and execute one batch; bill its cycles."""
        config = self.config
        costs = self.costs
        injector = self.injector
        durability = self.durability
        self.tree_buffer.decay()
        if injector is not None:
            injector.start_batch(
                batch_index, self.dispatcher, self.shortcuts, self.tree_buffer,
                durability=durability,
            )
        if config.enable_combining:
            pcu_outcome = self.pcu.combine_batch(batch)
            dispatched = self.dispatcher.dispatch(self.tables)
            pcu_cycles = pcu_outcome.cycles
        else:
            dispatched = self._round_robin(batch)
            pcu_cycles = 0

        # Write-ahead: the combined batch reaches the log (and its
        # COMMIT fsync point) before any SOU may mutate the tree.
        batch_durability_cycles = 0
        if durability is not None:
            wal_seconds = durability.log_batch(batch_index, batch)
            batch_durability_cycles += int(wal_seconds * costs.clock_hz)

        outcomes = [self.sous[b.sou_id].process_bucket(b) for b in dispatched]

        per_sou: Dict[int, int] = {}
        batch_offchip_lines = 0
        for outcome in outcomes:
            per_sou[outcome.sou_id] = per_sou.get(outcome.sou_id, 0) + outcome.cycles
            batch_offchip_lines += outcome.offchip_lines
        compute_cycles = max(per_sou.values()) if per_sou else 0

        # Residual synchronisation: structural writes to shared
        # ancestors serialise on a global lock across SOUs.
        sync_targets: List[int] = []
        for outcome in outcomes:
            sync_targets.extend(outcome.global_sync_targets)
        batch_sync_cycles = len(sync_targets) * costs.global_sync_cycles
        counts = Counter(sync_targets)
        self.contentions += sum(c - 1 for c in counts.values() if c > 1)
        # Each shared-ancestor lock stalls the other active SOUs.
        active_sous = len({o.sou_id for o in outcomes})
        self.contentions += len(sync_targets) * max(0, active_sous - 1)
        # One contention per coalesced write group (single lock for
        # the whole group, vs. k-1 contentions operation-centric).
        self.contentions += sum(o.coalesced_contended_groups for o in outcomes)
        if not config.enable_combining:
            # Without combining, same-node writes land on different
            # SOUs and must synchronise like any shared write.
            extra = self._uncombined_conflicts(batch)
            self.contentions += extra
            batch_sync_cycles += extra * costs.global_sync_cycles
        self.global_sync_ops += len(sync_targets)
        self.sync_cycles_total += batch_sync_cycles

        # HBM bandwidth floor for the batch's off-chip traffic.
        offchip_bytes = batch_offchip_lines * CACHE_LINE_BYTES
        if self.shortcuts is not None:
            offchip_bytes += sum(o.shortcut_misses for o in outcomes) * (
                SHORTCUT_ENTRY_BYTES
            )
        hbm_gb_s = costs.hbm_bandwidth_gb_s
        if injector is not None:
            # A throttle window narrows the effective HBM bandwidth
            # (factor 0 = blackout, priced per line below).
            hbm_gb_s *= injector.bandwidth_factor()
        bandwidth_cycles = hbm_bandwidth_cycles(
            offchip_bytes, hbm_gb_s, costs.clock_hz,
            blackout_cycles_per_line=costs.hbm_blackout_cycles_per_line,
        )
        self.offchip_lines_total += batch_offchip_lines
        # Failover re-dispatch: the Dispatcher re-targets each of a
        # failed unit's buckets, serialised like any dispatch step.
        redispatch_cycles = (
            self.dispatcher.failovers_last_batch * costs.redispatch_cycles
        )
        self.redispatch_cycles_total += redispatch_cycles
        # The batch is fully applied: checkpoint if one is due.
        if durability is not None:
            ckpt_seconds = durability.maybe_checkpoint(
                batch_index, self.tree,
                accel_state=durability_accel_state(self.shortcuts, self.tables),
            )
            batch_durability_cycles += int(ckpt_seconds * costs.clock_hz)
            self.durability_cycles_total += batch_durability_cycles
        batch_cycles = (
            max(compute_cycles, bandwidth_cycles)
            + batch_sync_cycles
            + redispatch_cycles
            + batch_durability_cycles
        )
        if self.tracer is not None:
            self.tracer.record_batch(BatchSample(
                batch_index=batch_index,
                n_ops=len(batch),
                pcu_cycles=pcu_cycles,
                per_sou_cycles=dict(per_sou),
                compute_cycles=compute_cycles,
                bandwidth_cycles=bandwidth_cycles,
                sync_cycles=batch_sync_cycles,
                redispatch_cycles=redispatch_cycles,
                durability_cycles=batch_durability_cycles,
            ))
        if injector is not None:
            injector.end_batch(batch_index, len(batch), batch_cycles, per_sou)
        self.batches_executed += 1
        return BatchExecution(
            batch_index=batch_index,
            n_ops=len(batch),
            pcu_cycles=pcu_cycles,
            service_cycles=batch_cycles,
            compute_cycles=compute_cycles,
            bandwidth_cycles=bandwidth_cycles,
            sync_cycles=batch_sync_cycles,
            redispatch_cycles=redispatch_cycles,
            durability_cycles=batch_durability_cycles,
            outcomes=outcomes,
            per_sou=per_sou,
        )

    # ------------------------------------------------------------------

    def _round_robin(self, batch: List[Operation]) -> List[DispatchedBucket]:
        """No-combining ablation: arrival order, round-robin over SOUs.

        Routing still goes through the dispatcher so fail-stopped units
        are skipped (their slices fail over like any bucket would).
        """
        dispatcher = self.dispatcher
        per_sou: List[List[Operation]] = [[] for _ in range(self.config.n_sous)]
        for i, op in enumerate(batch):
            per_sou[i % self.config.n_sous].append(op)
        dispatcher.failovers_last_batch = 0
        out: List[DispatchedBucket] = []
        for i, ops in enumerate(per_sou):
            if not ops:
                continue
            sou_id = dispatcher.route(i)
            if sou_id != i:
                dispatcher.failovers += 1
                dispatcher.failovers_last_batch += 1
            out.append(
                DispatchedBucket(
                    bucket_id=i, sou_id=sou_id, operations=ops, value=len(ops)
                )
            )
        return out

    @staticmethod
    def _uncombined_conflicts(batch: List[Operation]) -> int:
        """Same-key write collisions within an uncombined batch."""
        writers: Counter = Counter()
        touched: Counter = Counter()
        for op in batch:
            touched[op.key] += 1
            if op.kind.is_write:
                writers[op.key] += 1
        return sum(
            touched[key] - 1 for key, count in writers.items() if touched[key] > 1
        )

    # ------------------------------------------------------------------

    def report_metrics(self, registry: MetricsRegistry) -> None:
        """Every unit's counters, in the same shape either driver sees."""
        self.pcu.report_metrics(registry)
        self.dispatcher.report_metrics(registry)
        for sou in self.sous:
            sou.report_metrics(registry)
        if self.shortcuts is not None:
            self.shortcuts.report_metrics(registry)
        else:
            # Shortcut ablation: the view's keys must still exist.
            registry.gauge("shortcut_table.entries", 0)
            registry.gauge("shortcut_table.buffer_hit_rate", 0.0)
            registry.counter("shortcut_table.stale_hits", 0)
        self.tree_buffer.report_metrics(registry)


class DcartAccelerator(Engine):
    """DCART on the Alveo U280, as a deterministic cycle model."""

    name = "DCART"

    def __init__(
        self,
        platform: Platform = FPGA_PLATFORM,
        config: Optional[DCARTConfig] = None,
        injector=None,
        durability=None,
        telemetry=None,
    ):
        super().__init__(platform)
        self.config = config if config is not None else DCARTConfig()
        #: Optional :class:`~repro.faults.FaultInjector` (chaos harness);
        #: ``None`` models the perfect machine.
        self.injector = injector
        #: Optional :class:`~repro.obs.Telemetry`: a MetricsRegistry the
        #: hardware units report into at end of run, and optionally a
        #: BatchTracer recording one span sample per batch.  ``None`` (the
        #: default) costs one pointer test per batch; results are
        #: bit-identical either way because ``result.extra`` is always
        #: derived through a registry.
        self.telemetry = telemetry
        #: Optional :class:`~repro.durability.DurabilityManager`: when
        #: set, every combined batch is WAL-logged *before* SOU dispatch
        #: (write-ahead), the tree + accelerator state checkpoint every N
        #: batches, and the log/fsync/checkpoint traffic is billed into
        #: the batch cycles.  ``None`` models the volatile machine.
        self.durability = durability

    # ------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        tree: Optional[AdaptiveRadixTree] = None,
        records=None,  # ignored: DCART's execution takes different paths
    ) -> RunResult:
        config = self.config
        costs = config.costs
        if tree is None:
            tree = self.build_tree(workload)
        result = self._new_result(workload)

        injector = self.injector
        if injector is not None:
            injector.reset()
        session = self.open_session(workload, tree)
        telemetry = self.telemetry
        tracer = session.tracer
        durability = self.durability

        pcu_cycles: List[int] = []
        sou_cycles: List[int] = []
        batch_outcomes: List[List[BucketOutcome]] = []

        for batch_index, batch in enumerate(
            workload.operations.batches(config.batch_size)
        ):
            execution = session.execute_batch(batch, batch_index)
            pcu_cycles.append(execution.pcu_cycles)
            sou_cycles.append(execution.service_cycles)
            batch_outcomes.append(execution.outcomes)

        contentions = session.contentions
        global_sync_ops = session.global_sync_ops
        sync_cycles_total = session.sync_cycles_total
        offchip_lines_total = session.offchip_lines_total
        redispatch_cycles_total = session.redispatch_cycles_total
        durability_cycles_total = session.durability_cycles_total
        tree_buffer = session.tree_buffer
        dispatcher = session.dispatcher
        extractor = session.extractor

        timeline = overlap_timeline(pcu_cycles, sou_cycles, config.enable_overlap)
        elapsed = timeline.total_cycles * costs.cycle_seconds
        if tracer is not None:
            tracer.finalize(
                timeline,
                clock_hz=costs.clock_hz,
                overlap=config.enable_overlap,
                has_durability=durability is not None,
            )

        # Latency of an op = waiting for its batch's SOUs to start, plus
        # its completion offset within its SOU's queue.  With the
        # overlap, batch i's SOUs start ``starts[i] - starts[i-1]``
        # cycles after batch i begins combining (at starts[i-1], in the
        # shadow of batch i-1's SOU work) — that difference is
        # ``max(prev batch cycles, own combine)``, i.e. queueing behind
        # earlier batches, which ``pcu_cycles[i]`` alone missed.
        # Serially, combining starts only when the previous batch fully
        # drains, so the wait is just the batch's own combine time.
        if config.enable_overlap and timeline.batch_start_cycles:
            starts = timeline.batch_start_cycles
            batch_waits = [starts[0]]
            for i in range(1, len(starts)):
                batch_waits.append(starts[i] - starts[i - 1])
        else:
            batch_waits = list(pcu_cycles)
        self._aggregate(result, batch_outcomes, batch_waits, costs)
        result.cache_hit_rate = tree_buffer.hit_rate
        result.elapsed_seconds = elapsed
        result.lock_contentions = contentions
        result.lock_acquisitions = global_sync_ops
        result.energy_joules = self.platform.energy_joules(elapsed)

        sync_seconds = sync_cycles_total * costs.cycle_seconds
        unhidden_pcu = (
            timeline.pcu_total_cycles - timeline.hidden_cycles
        ) * costs.cycle_seconds
        result.breakdown = TimeBreakdown(
            traverse_seconds=max(0.0, elapsed - sync_seconds - unhidden_pcu),
            sync_seconds=min(sync_seconds, elapsed),
            other_seconds=min(unhidden_pcu, max(0.0, elapsed - sync_seconds)),
        )
        # Every unit reports into a registry — the attached one when
        # telemetry is on, a throwaway otherwise, so the derived
        # ``result.extra`` view is bit-identical in both cases.
        registry = (
            telemetry.registry if telemetry is not None else MetricsRegistry()
        )
        session.report_metrics(registry)
        registry.gauge("run.prefix_byte_offset", extractor.byte_offset)
        registry.counter("run.batches", len(sou_cycles))
        registry.counter("run.total_cycles", timeline.total_cycles)
        registry.counter("run.hidden_pcu_cycles", timeline.hidden_cycles)
        registry.gauge("run.overlap_efficiency", timeline.overlap_efficiency)
        registry.counter("run.contentions", contentions)
        registry.counter("hbm.offchip_lines", offchip_lines_total)
        registry.counter("sync.global_ops", global_sync_ops)
        registry.counter("sync.cycles", sync_cycles_total)
        registry.counter("dispatcher.redispatch_cycles", redispatch_cycles_total)
        if durability is not None:
            durability.report_metrics(registry)
            registry.counter("durability.cycles", durability_cycles_total)

        result.extra.update(extra_view(registry))
        if injector is not None:
            result.extra.update(injector.snapshot())
            result.extra["failover_buckets"] = dispatcher.failovers
            result.extra["redispatch_cycles"] = redispatch_cycles_total
        if durability is not None:
            result.extra.update(durability.snapshot())
            result.extra["durability_cycles"] = durability_cycles_total
            durability.close()
        return result

    # ------------------------------------------------------------------

    def open_session(
        self, workload: Workload, tree: AdaptiveRadixTree
    ) -> AcceleratorSession:
        """Fresh per-batch execution state over ``tree``.

        The serving simulator's entry point: it feeds the session
        arrival-formed batches instead of fixed ``batch_size`` slices.
        The caller must reset the injector (if any) before the first
        batch of a run.
        """
        return AcceleratorSession(self, workload, tree)

    def _make_extractor(self, workload: Workload) -> PrefixExtractor:
        if self.config.prefix_byte_offset is not None:
            return PrefixExtractor(
                self.config.prefix_byte_offset, self.config.n_buckets
            )
        sample = workload.loaded_keys[:CALIBRATION_SAMPLE]
        return PrefixExtractor.calibrate(sample, self.config.n_buckets)

    def _aggregate(
        self,
        result: RunResult,
        batch_outcomes: List[List[BucketOutcome]],
        batch_waits: List[int],
        costs,
    ) -> None:
        id_chunks: List[np.ndarray] = []
        cycle_chunks: List[np.ndarray] = []
        matches = visited = fetched = used = 0
        counts = result.node_access_counts
        for batch_index, outcomes in enumerate(batch_outcomes):
            # Latency of an op = waiting for its batch's SOUs to start
            # (combine time plus queueing behind earlier batches, per
            # Timeline.batch_start_cycles — see run()), plus its
            # completion offset within its SOU's queue.
            start = batch_waits[batch_index]
            for outcome in outcomes:
                matches += outcome.partial_key_matches
                visited += outcome.nodes_visited
                fetched += outcome.bytes_fetched
                used += outcome.bytes_used
                # One counting pass over the raw visit list per bucket;
                # the distinct-node set falls out as the Counter's keys.
                counts.update(outcome.visited_ids)
                if outcome.op_ids:
                    id_chunks.append(
                        np.asarray(outcome.op_ids, dtype=np.int64)
                    )
                    cycle_chunks.append(
                        np.asarray(outcome.completion_cycles, dtype=np.int64)
                        + start
                    )
        result.partial_key_matches = matches
        result.nodes_visited = visited
        result.distinct_nodes_visited = len(counts)
        result.bytes_fetched = fetched
        result.bytes_used = used
        if id_chunks:
            # op_ids are unique across the run, so a stable argsort on
            # them reproduces exactly the old (op_id, latency) tuple
            # sort; cycle counts stay integers until the final float
            # multiply, which matches the scalar path bit-for-bit.
            op_ids = np.concatenate(id_chunks)
            completion = np.concatenate(cycle_chunks)
            order = np.argsort(op_ids, kind="stable")
            result.latencies_ns = (
                completion[order] * costs.cycle_seconds
            ) * 1e9
        else:
            result.latencies_ns = np.zeros(0)
