"""The Dispatcher (paper §III-A): buckets → SOUs, values → Tree_buffer.

Two responsibilities:

* hand each non-empty bucket to exactly one SOU (statically, bucket *i*
  to SOU ``i % n_sous``), so all operations that target the same node are
  processed by a single unit and need no locks;
* after combining, the operation count of each bucket is known — that
  count is the *value* estimate the value-aware Tree_buffer uses for the
  nodes the bucket's operations will touch (§III-E: "the number of the
  operations in the corresponding bucket approximates the value of this
  node").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.bucket_table import BucketTables
from repro.errors import ConfigError
from repro.workloads.ops import Operation


@dataclass
class DispatchedBucket:
    """One bucket assigned to one SOU for the current batch."""

    bucket_id: int
    sou_id: int
    operations: List[Operation]
    value: int  # node-value estimate for the Tree_buffer

    @property
    def n_ops(self) -> int:
        return len(self.operations)


class Dispatcher:
    """Static bucket-to-SOU assignment."""

    def __init__(self, n_sous: int):
        if n_sous <= 0:
            raise ConfigError(f"n_sous must be positive: {n_sous}")
        self.n_sous = n_sous
        self.dispatched_buckets = 0

    def dispatch(self, tables: BucketTables) -> List[DispatchedBucket]:
        """Assign the batch's non-empty buckets to SOUs."""
        out: List[DispatchedBucket] = []
        for bucket_id, operations in enumerate(tables.buckets):
            if not operations:
                continue
            out.append(
                DispatchedBucket(
                    bucket_id=bucket_id,
                    sou_id=bucket_id % self.n_sous,
                    operations=list(operations),
                    value=len(operations),
                )
            )
        self.dispatched_buckets += len(out)
        return out

    def per_sou_load(self, dispatched: List[DispatchedBucket]) -> List[int]:
        """Operations assigned to each SOU (load-balance diagnostics)."""
        load = [0] * self.n_sous
        for bucket in dispatched:
            load[bucket.sou_id] += bucket.n_ops
        return load
