"""The Dispatcher (paper §III-A): buckets → SOUs, values → Tree_buffer.

Two responsibilities:

* hand each non-empty bucket to exactly one SOU (statically, bucket *i*
  to SOU ``i % n_sous``), so all operations that target the same node are
  processed by a single unit and need no locks;
* after combining, the operation count of each bucket is known — that
  count is the *value* estimate the value-aware Tree_buffer uses for the
  nodes the bucket's operations will touch (§III-E: "the number of the
  operations in the corresponding bucket approximates the value of this
  node").

Failover (chaos harness): a fail-stopped SOU (see
:mod:`repro.faults`) keeps its bucket mapping, but :meth:`route`
deterministically re-targets its buckets to the next surviving unit in
ring order.  A bucket is still processed *whole* by exactly one SOU, so
the same-node-same-SOU lock-freedom invariant survives any number of
failures short of all of them; each re-routed bucket is billed as a
re-dispatch by the accelerator's timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.core.bucket_table import BucketTables
from repro.errors import ConfigError, SouFailedError
from repro.log import get_logger
from repro.workloads.ops import Operation

LOG = get_logger("dispatcher")


@dataclass
class DispatchedBucket:
    """One bucket assigned to one SOU for the current batch."""

    bucket_id: int
    sou_id: int
    operations: List[Operation]
    value: int  # node-value estimate for the Tree_buffer

    @property
    def n_ops(self) -> int:
        return len(self.operations)


class Dispatcher:
    """Static bucket-to-SOU assignment with fail-stop failover."""

    def __init__(self, n_sous: int):
        if n_sous <= 0:
            raise ConfigError(f"n_sous must be positive: {n_sous}")
        self.n_sous = n_sous
        self.dispatched_buckets = 0
        self.failed: Set[int] = set()
        self.failovers = 0          # re-routed buckets, cumulative
        self.failovers_last_batch = 0

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def fail(self, sou_id: int) -> None:
        """Mark an SOU fail-stopped; its buckets re-route from now on."""
        if not 0 <= sou_id < self.n_sous:
            raise ConfigError(f"sou_id out of range: {sou_id}")
        self.failed.add(sou_id)

    @property
    def n_alive(self) -> int:
        return self.n_sous - len(self.failed)

    def route(self, bucket_id: int) -> int:
        """SOU that owns ``bucket_id``, skipping fail-stopped units.

        The primary owner is ``bucket_id % n_sous``; on failure the
        bucket walks the ring to the next survivor.  The walk is a pure
        function of ``(bucket_id, failed set)``, so the assignment is
        deterministic and every bucket lands on exactly one unit.
        """
        primary = bucket_id % self.n_sous
        if primary not in self.failed:
            return primary
        for step in range(1, self.n_sous):
            candidate = (primary + step) % self.n_sous
            if candidate not in self.failed:
                return candidate
        raise SouFailedError(
            "no surviving SOU to take over bucket "
            f"{bucket_id}: all {self.n_sous} units fail-stopped",
            {"bucket_id": bucket_id, "failed_sous": sorted(self.failed)},
        )

    # ------------------------------------------------------------------

    def dispatch(self, tables: BucketTables) -> List[DispatchedBucket]:
        """Assign the batch's non-empty buckets to surviving SOUs."""
        out: List[DispatchedBucket] = []
        self.failovers_last_batch = 0
        for bucket_id, operations in enumerate(tables.buckets):
            if not operations:
                continue
            sou_id = self.route(bucket_id)
            if sou_id != bucket_id % self.n_sous:
                self.failovers += 1
                self.failovers_last_batch += 1
                LOG.debug(
                    "failover: bucket %d re-routed to SOU %d", bucket_id, sou_id
                )
            out.append(
                DispatchedBucket(
                    bucket_id=bucket_id,
                    sou_id=sou_id,
                    operations=list(operations),
                    value=len(operations),
                )
            )
        self.dispatched_buckets += len(out)
        return out

    def report_metrics(self, registry) -> None:
        """Write the Dispatcher's run totals into a MetricsRegistry."""
        registry.counter("dispatcher.dispatched_buckets", self.dispatched_buckets)
        registry.counter("dispatcher.failover_buckets", self.failovers)
        registry.gauge("dispatcher.failed_sous", len(self.failed))
        registry.gauge("dispatcher.alive_sous", self.n_alive)

    def per_sou_load(self, dispatched: List[DispatchedBucket]) -> List[int]:
        """Operations assigned to each SOU (load-balance diagnostics)."""
        load = [0] * self.n_sous
        for bucket in dispatched:
            load[bucket.sou_id] += bucket.n_ops
        return load
