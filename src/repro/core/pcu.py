"""The Prefix-based Combining Unit (paper §III-B, Fig. 5 left).

Three pipeline stages — ``Scan_Operation`` → ``Get_Prefix`` →
``Combine_Operation`` — sustain one operation per cycle in steady state.
The timing model therefore bills:

* the pipeline fill (3 cycles),
* one cycle per scanned operation,
* and the Bucket_buffer spill: bucket records beyond the 2 MB on-chip
  buffer stream to the off-chip Bucket_Tables at a per-line cost.

The functional side (actually appending operations to bucket lists) lives
in :class:`repro.core.bucket_table.BucketTables`; the PCU composes it
with the cycle accounting so a batch is combined in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.bucket_table import BucketTables
from repro.model.costs import FpgaCosts
from repro.workloads.ops import Operation

CACHE_LINE_BYTES = 64


@dataclass
class PcuBatchOutcome:
    """Timing and bookkeeping for one combined batch."""

    n_ops: int
    cycles: int
    spilled_bytes: int


class PrefixCombiningUnit:
    """Cycle-accounted wrapper around the bucket-combining function."""

    def __init__(self, tables: BucketTables, costs: FpgaCosts):
        self.tables = tables
        self.costs = costs
        self.total_cycles = 0
        self.total_ops = 0

    def combine_batch(self, operations: Sequence[Operation]) -> PcuBatchOutcome:
        """Combine one batch; the tables are cleared first (new batch)."""
        spilled_before = self.tables.spilled_bytes
        self.tables.clear()
        self.tables.combine(operations)
        spilled = self.tables.spilled_bytes - spilled_before

        cycles = self.costs.pcu_pipeline_fill_cycles
        cycles += int(len(operations) * self.costs.pcu_cycles_per_op)
        spill_lines = -(-spilled // CACHE_LINE_BYTES)
        cycles += spill_lines * self.costs.bucket_flush_cycles_per_line

        self.total_cycles += cycles
        self.total_ops += len(operations)
        return PcuBatchOutcome(n_ops=len(operations), cycles=cycles, spilled_bytes=spilled)

    def report_metrics(self, registry) -> None:
        """Write the PCU's run totals into a MetricsRegistry."""
        registry.counter("pcu.total_cycles", self.total_cycles)
        registry.counter("pcu.total_ops", self.total_ops)
        registry.counter("pcu.spilled_bytes", self.tables.spilled_bytes)
