"""Batch splitting and the PCU/SOU overlap timeline (paper §III-D, Fig. 6).

With overlap enabled, the PCU combines batch *i+1* while the SOUs operate
on batch *i* (double-buffered Bucket_Tables), so the wall-clock cycles of
a run are

    pcu[0] + sum(max(sou[i], pcu[i+1]) for i < n-1) + sou[n-1]

rather than ``sum(pcu) + sum(sou)``.  :func:`overlap_timeline` computes
both and reports how many combining cycles the overlap hid — the quantity
the ablation benchmark (``no-overlap DCART``) surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SimulationError


@dataclass
class Timeline:
    """Result of composing per-batch PCU and SOU cycle counts."""

    total_cycles: int
    serial_cycles: int       # what a non-overlapped design would take
    hidden_cycles: int       # combining cycles the overlap absorbed
    batch_start_cycles: List[int]  # SOU start cycle of each batch
    pcu_total_cycles: int = 0

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of total combining work hidden behind operating."""
        if self.pcu_total_cycles == 0:
            return 0.0
        return self.hidden_cycles / self.pcu_total_cycles


def overlap_timeline(
    pcu_cycles: Sequence[int],
    sou_cycles: Sequence[int],
    enabled: bool = True,
) -> Timeline:
    """Compose per-batch cycles into a run timeline.

    ``pcu_cycles[i]``/``sou_cycles[i]`` are the combining and operating
    cycles of batch *i*.  ``enabled=False`` models the ablated design
    that combines and operates strictly in sequence.
    """
    if len(pcu_cycles) != len(sou_cycles):
        raise SimulationError(
            f"pcu/sou batch counts differ: {len(pcu_cycles)} vs {len(sou_cycles)}"
        )
    n = len(pcu_cycles)
    serial = int(sum(pcu_cycles) + sum(sou_cycles))
    pcu_total = int(sum(pcu_cycles))
    starts: List[int] = []
    if n == 0:
        return Timeline(0, 0, 0, starts, 0)

    if not enabled:
        clock = 0
        for i in range(n):
            clock += pcu_cycles[i]
            starts.append(clock)
            clock += sou_cycles[i]
        return Timeline(clock, serial, 0, starts, pcu_total)

    # Overlapped: PCU(i+1) runs while SOU(i) runs.
    clock = pcu_cycles[0]
    hidden = 0
    for i in range(n):
        starts.append(clock)
        if i + 1 < n:
            step = max(sou_cycles[i], pcu_cycles[i + 1])
            hidden += min(sou_cycles[i], pcu_cycles[i + 1])
            clock += step
        else:
            clock += sou_cycles[i]
    return Timeline(int(clock), serial, int(hidden), starts, pcu_total)
