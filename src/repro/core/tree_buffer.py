"""The value-aware Tree_buffer (paper §III-E).

DCART caches ART nodes on chip in a 4 MB Tree_buffer.  Plain LRU would
let the irregular traversal evict *high-value* nodes (the frequently
traversed ones of Observation 2), so DCART replaces by **value**: the
value of a node approximates how many pending operations will touch it —
"the number of the operations in the corresponding bucket", known right
after combining.  On a full buffer, a node is admitted only if its value
exceeds the current minimum, evicting that minimum — so the hot subtree
is pinned for the whole batch and cache thrashing on high-value nodes is
impossible by construction.

Implementation: a dict for O(1) probes plus a lazy min-heap of
``(value, address)`` entries; superseded heap entries are skipped on pop.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError


class ValueAwareTreeBuffer:
    """Byte-budgeted node cache with value-based replacement.

    Eviction order is (value, recency): the victim is the least recently
    used node among those with the lowest value.  The paper specifies
    the value rule ("evict the node with the lowest value"); the LRU
    tie-break is our refinement for the common case where many nodes of
    one bucket share the same value estimate.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        # addr -> (value, seq, size); heap of (value, seq, addr), lazy.
        self._resident: Dict[int, Tuple[float, int, int]] = {}
        self._heap: list = []
        self._seq = 0
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_inserts = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, address: int) -> bool:
        return address in self._resident

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _set(self, address: int, value: float, size: int) -> None:
        seq = self._next_seq()
        self._resident[address] = (value, seq, size)
        heapq.heappush(self._heap, (value, seq, address))

    def lookup(self, address: int) -> bool:
        """Probe the buffer for a node fetch (refreshes recency)."""
        entry = self._resident.get(address)
        if entry is not None:
            self.hits += 1
            self._set(address, entry[0], entry[2])
            return True
        self.misses += 1
        return False

    def value_of(self, address: int) -> Optional[float]:
        entry = self._resident.get(address)
        return entry[0] if entry else None

    def set_value(self, address: int, value: float) -> None:
        """Re-estimate a resident node's value (new batch, new buckets)."""
        entry = self._resident.get(address)
        if entry is None:
            return
        self._set(address, value, entry[2])

    def admit(self, address: int, size_bytes: int, value: float) -> bool:
        """Offer a fetched node to the buffer; returns True if cached.

        Free space admits unconditionally; a full buffer admits only
        when ``value`` is at least the current lowest resident value,
        evicting lowest-value (then least-recent) residents to make room
        (SIII-E's Value_x > Value_low rule, with >= so same-value nodes
        rotate instead of freezing the buffer).
        """
        if size_bytes <= 0:
            raise ConfigError(f"node size must be positive: {size_bytes}")
        if size_bytes > self.capacity_bytes:
            raise ConfigError(
                f"node of {size_bytes} B exceeds Tree_buffer capacity"
            )
        existing = self._resident.get(address)
        if existing is not None:
            self.used_bytes += size_bytes - existing[2]
            self._set(address, max(existing[0], value), size_bytes)
            return True

        while self.used_bytes + size_bytes > self.capacity_bytes:
            victim = self._pop_lowest()
            if victim is None:
                break
            victim_value, victim_seq, victim_addr = victim
            if victim_value > value:
                # The newcomer is strictly colder than everything
                # resident (Value_x <= Value_low): do not thrash.
                heapq.heappush(
                    self._heap, (victim_value, victim_seq, victim_addr)
                )
                self.rejected_inserts += 1
                return False
            size = self._resident.pop(victim_addr)[2]
            self.used_bytes -= size
            self.evictions += 1

        self.used_bytes += size_bytes
        self._set(address, value, size_bytes)
        return True

    def _pop_lowest(self) -> Optional[Tuple[float, int, int]]:
        """Lowest-(value, recency) live entry, skipping stale records."""
        while self._heap:
            value, seq, address = heapq.heappop(self._heap)
            current = self._resident.get(address)
            if current is not None and current[0] == value and current[1] == seq:
                return value, seq, address
        return None

    def invalidate(self, address: int) -> bool:
        """Drop a node (it was freed by a split/merge/grow)."""
        entry = self._resident.pop(address, None)
        if entry is None:
            return False
        self.used_bytes -= entry[2]
        return True

    def resident_addresses(self) -> list:
        """Addresses currently cached (fault-injection storm targets)."""
        return list(self._resident.keys())

    def decay(self, factor: float = 0.5) -> None:
        """Age every resident value (called once per batch).

        Bucket op counts are per-batch estimates; without aging, a node
        admitted during one hot batch would out-rank every later batch's
        nodes forever.  Exponential decay keeps persistent hot nodes
        resident (their values are refreshed by each batch's hits) while
        letting one-batch wonders drain out - the hardware analogue is a
        periodic right-shift of the value registers.
        """
        if not 0 < factor <= 1:
            raise ConfigError(f"decay factor must be in (0, 1]: {factor}")
        if factor == 1.0:
            return
        self._heap = []
        for address, (value, seq, size) in list(self._resident.items()):
            aged = value * factor
            self._resident[address] = (aged, seq, size)
            heapq.heappush(self._heap, (aged, seq, address))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class LruTreeBuffer:
    """LRU node cache with the same interface as the value-aware buffer.

    This is the ablation counterpart of :class:`ValueAwareTreeBuffer`
    (``DCARTConfig(value_aware_tree_buffer=False)``): node values are
    ignored and plain recency decides eviction, which lets a cold burst
    flush the hot subtree — exactly the thrashing §III-E argues against.
    """

    def __init__(self, capacity_bytes: int):
        from repro.core.lru_buffer import LruBuffer

        self._lru = LruBuffer(capacity_bytes)
        self.capacity_bytes = capacity_bytes

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, address: int) -> bool:
        return address in self._lru

    def lookup(self, address: int) -> bool:
        return self._lru.lookup(address)

    def admit(self, address: int, size_bytes: int, value: float) -> bool:
        self._lru.insert(address, size_bytes)
        return True

    def set_value(self, address: int, value: float) -> None:
        """LRU ignores values (interface parity)."""

    def decay(self, factor: float = 0.5) -> None:
        """LRU has no values to age (interface parity)."""

    def invalidate(self, address: int) -> bool:
        return self._lru.remove(address)

    def resident_addresses(self) -> list:
        """Addresses currently cached (fault-injection storm targets)."""
        return self._lru.keys()

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate
