"""The value-aware Tree_buffer (paper §III-E).

DCART caches ART nodes on chip in a 4 MB Tree_buffer.  Plain LRU would
let the irregular traversal evict *high-value* nodes (the frequently
traversed ones of Observation 2), so DCART replaces by **value**: the
value of a node approximates how many pending operations will touch it —
"the number of the operations in the corresponding bucket", known right
after combining.  On a full buffer, a node is admitted only if its value
exceeds the current minimum, evicting that minimum — so the hot subtree
is pinned for the whole batch and cache thrashing on high-value nodes is
impossible by construction.

Implementation: a dict for O(1) probes plus a lazy min-heap of
``(value, address)`` entries; superseded heap entries are skipped on pop.

Decay is *lazy*: ageing every resident value each batch would rebuild
the whole heap, so the buffer instead keeps one cumulative decay
multiplier and stores every value *normalised* by the multiplier in
force when it was written.  Effective value = stored / multiplier at
write time x multiplier now; ordering among normalised values is
invariant under decay (all effective values scale together), so
``decay()`` is O(1) and eviction order is exactly what the eager
rebuild produced.  With the default factor 0.5 every scaling step is a
power of two, hence exact in binary floating point.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Renormalisation threshold: when the cumulative decay multiplier
#: drops below this, it is folded into the stored values (exactly, for
#: power-of-two factors) so it can never underflow to zero.
_MIN_MULT = 1e-150


class ValueAwareTreeBuffer:
    """Byte-budgeted node cache with value-based replacement.

    Eviction order is (value, recency): the victim is the least recently
    used node among those with the lowest value.  The paper specifies
    the value rule ("evict the node with the lowest value"); the LRU
    tie-break is our refinement for the common case where many nodes of
    one bucket share the same value estimate.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        # addr -> (normalised value, seq, size); heap of (norm, seq, addr),
        # lazy.  Effective value of an entry = norm * _mult.
        self._resident: Dict[int, Tuple[float, int, int]] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        #: Cumulative decay multiplier (product of all decay factors).
        self._mult = 1.0
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_inserts = 0

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, address: int) -> bool:
        return address in self._resident

    def _set(self, address: int, norm: float, size: int) -> None:
        self._seq += 1
        self._resident[address] = (norm, self._seq, size)
        heappush(self._heap, (norm, self._seq, address))

    def lookup(self, address: int) -> bool:
        """Probe the buffer for a node fetch (refreshes recency)."""
        entry = self._resident.get(address)
        if entry is not None:
            self.hits += 1
            self._set(address, entry[0], entry[2])
            return True
        self.misses += 1
        return False

    def probe(self, address: int, value: float) -> bool:
        """Fused ``lookup`` + ``set_value`` for the SOU fetch path.

        On a hit the resident entry is refreshed (recency) and re-valued
        in one heap push instead of two; hit/miss accounting and the
        relative recency order match the unfused pair exactly.
        """
        entry = self._resident.get(address)
        if entry is None:
            self.misses += 1
            return False
        self.hits += 1
        self._seq += 1
        seq = self._seq
        norm = value / self._mult
        self._resident[address] = (norm, seq, entry[2])
        heappush(self._heap, (norm, seq, address))
        return True

    def fetch(self, address: int, size_bytes: int, value: float) -> bool:
        """Fused ``probe`` + ``admit``-on-miss: one node fetch, one call.

        The SOU's per-touch sequence is always "probe; if miss, admit" —
        fusing them saves a call and a residency lookup per touch on the
        innermost path.  Returns True on a buffer hit; accounting, heap
        contents, and eviction decisions are exactly the unfused pair's.
        """
        resident = self._resident
        heap = self._heap
        norm = value / self._mult
        entry = resident.get(address)
        if entry is not None:
            self.hits += 1
            seq = self._seq + 1
            self._seq = seq
            resident[address] = (norm, seq, entry[2])
            heappush(heap, (norm, seq, address))
            return True
        self.misses += 1
        capacity = self.capacity_bytes
        if size_bytes <= 0:
            raise ConfigError(f"node size must be positive: {size_bytes}")
        if size_bytes > capacity:
            raise ConfigError(
                f"node of {size_bytes} B exceeds Tree_buffer capacity"
            )
        while self.used_bytes + size_bytes > capacity:
            victim_addr = None
            while heap:
                victim = heappop(heap)
                current = resident.get(victim[2])
                if (
                    current is not None
                    and current[0] == victim[0]
                    and current[1] == victim[1]
                ):
                    victim_addr = victim[2]
                    break
            if victim_addr is None:
                break
            if victim[0] > norm:
                heappush(heap, victim)
                self.rejected_inserts += 1
                return False
            self.used_bytes -= resident.pop(victim_addr)[2]
            self.evictions += 1
        self.used_bytes += size_bytes
        seq = self._seq + 1
        self._seq = seq
        resident[address] = (norm, seq, size_bytes)
        heappush(heap, (norm, seq, address))
        return False

    def value_of(self, address: int) -> Optional[float]:
        entry = self._resident.get(address)
        return entry[0] * self._mult if entry else None

    def set_value(self, address: int, value: float) -> None:
        """Re-estimate a resident node's value (new batch, new buckets)."""
        entry = self._resident.get(address)
        if entry is None:
            return
        self._set(address, value / self._mult, entry[2])

    def admit(self, address: int, size_bytes: int, value: float) -> bool:
        """Offer a fetched node to the buffer; returns True if cached.

        Free space admits unconditionally; a full buffer admits only
        when ``value`` is at least the current lowest resident value,
        evicting lowest-value (then least-recent) residents to make room
        (SIII-E's Value_x > Value_low rule, with >= so same-value nodes
        rotate instead of freezing the buffer).
        """
        capacity = self.capacity_bytes
        if size_bytes <= 0:
            raise ConfigError(f"node size must be positive: {size_bytes}")
        if size_bytes > capacity:
            raise ConfigError(
                f"node of {size_bytes} B exceeds Tree_buffer capacity"
            )
        resident = self._resident
        heap = self._heap
        norm = value / self._mult
        existing = resident.get(address)
        if existing is not None:
            self.used_bytes += size_bytes - existing[2]
            e_norm = existing[0]
            if e_norm < norm:
                e_norm = norm
            self._seq += 1
            seq = self._seq
            resident[address] = (e_norm, seq, size_bytes)
            heappush(heap, (e_norm, seq, address))
            return True

        while self.used_bytes + size_bytes > capacity:
            # Inline _pop_lowest: lowest live (value, recency) entry.
            victim_addr = None
            while heap:
                victim = heappop(heap)
                current = resident.get(victim[2])
                if (
                    current is not None
                    and current[0] == victim[0]
                    and current[1] == victim[1]
                ):
                    victim_addr = victim[2]
                    break
            if victim_addr is None:
                break
            if victim[0] > norm:
                # The newcomer is strictly colder than everything
                # resident (Value_x <= Value_low): do not thrash.
                heappush(heap, victim)
                self.rejected_inserts += 1
                return False
            self.used_bytes -= resident.pop(victim_addr)[2]
            self.evictions += 1

        self.used_bytes += size_bytes
        self._seq += 1
        seq = self._seq
        resident[address] = (norm, seq, size_bytes)
        heappush(heap, (norm, seq, address))
        return True

    def invalidate(self, address: int) -> bool:
        """Drop a node (it was freed by a split/merge/grow)."""
        entry = self._resident.pop(address, None)
        if entry is None:
            return False
        self.used_bytes -= entry[2]
        return True

    def resident_addresses(self) -> List[int]:
        """Addresses currently cached (fault-injection storm targets)."""
        return list(self._resident.keys())

    def decay(self, factor: float = 0.5) -> None:
        """Age every resident value (called once per batch).

        Bucket op counts are per-batch estimates; without aging, a node
        admitted during one hot batch would out-rank every later batch's
        nodes forever.  Exponential decay keeps persistent hot nodes
        resident (their values are refreshed by each batch's hits) while
        letting one-batch wonders drain out - the hardware analogue is a
        periodic right-shift of the value registers.
        """
        if not 0 < factor <= 1:
            raise ConfigError(f"decay factor must be in (0, 1]: {factor}")
        if factor == 1.0:
            return
        # Lazy: scale the shared multiplier instead of every entry.
        # Normalised values (and hence heap order) are untouched.
        self._mult *= factor
        if self._mult < _MIN_MULT:
            self._renormalise()

    def _renormalise(self) -> None:
        """Fold the multiplier into the stored values before it underflows.

        Every normalised value scales by the same power-of-two-ish
        constant, so relative order — and with it eviction order — is
        preserved; this runs once per ~500 half-life decays.
        """
        mult = self._mult
        self._heap = []
        for address, (norm, seq, size) in self._resident.items():
            folded = norm * mult
            self._resident[address] = (folded, seq, size)
            heappush(self._heap, (folded, seq, address))
        self._mult = 1.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def report_metrics(self, registry: MetricsRegistry) -> None:
        """Write the buffer's run totals into a MetricsRegistry."""
        registry.counter("tree_buffer.hits", self.hits)
        registry.counter("tree_buffer.misses", self.misses)
        registry.counter("tree_buffer.evictions", self.evictions)
        registry.counter("tree_buffer.rejected_inserts", self.rejected_inserts)
        registry.gauge("tree_buffer.resident_nodes", len(self._resident))
        registry.gauge("tree_buffer.used_bytes", self.used_bytes)
        registry.gauge("tree_buffer.capacity_bytes", self.capacity_bytes)
        registry.gauge("tree_buffer.hit_rate", self.hit_rate)


class LruTreeBuffer:
    """LRU node cache with the same interface as the value-aware buffer.

    This is the ablation counterpart of :class:`ValueAwareTreeBuffer`
    (``DCARTConfig(value_aware_tree_buffer=False)``): node values are
    ignored and plain recency decides eviction, which lets a cold burst
    flush the hot subtree — exactly the thrashing §III-E argues against.
    """

    def __init__(self, capacity_bytes: int) -> None:
        from repro.core.lru_buffer import LruBuffer

        self._lru = LruBuffer(capacity_bytes)
        self.capacity_bytes = capacity_bytes

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, address: int) -> bool:
        return address in self._lru

    def lookup(self, address: int) -> bool:
        return self._lru.lookup(address)

    def probe(self, address: int, value: float) -> bool:
        """Fused lookup + set_value; LRU ignores the value."""
        return self._lru.lookup(address)

    def fetch(self, address: int, size_bytes: int, value: float) -> bool:
        """Fused probe + admit-on-miss (see the value-aware buffer)."""
        lru = self._lru
        if lru.lookup(address):
            return True
        lru.insert(address, size_bytes)
        return False

    def admit(self, address: int, size_bytes: int, value: float) -> bool:
        self._lru.insert(address, size_bytes)
        return True

    def set_value(self, address: int, value: float) -> None:
        """LRU ignores values (interface parity)."""

    def decay(self, factor: float = 0.5) -> None:
        """LRU has no values to age (interface parity)."""

    def invalidate(self, address: int) -> bool:
        return self._lru.remove(address)

    def resident_addresses(self) -> List[int]:
        """Addresses currently cached (fault-injection storm targets)."""
        return self._lru.keys()

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    @property
    def hit_rate(self) -> float:
        return self._lru.hit_rate

    def report_metrics(self, registry: MetricsRegistry) -> None:
        """Write the buffer's run totals into a MetricsRegistry.

        Same metric names as the value-aware buffer so the registry
        shape is ablation-invariant; LRU has no value admission, so
        ``rejected_inserts`` is always 0 here.
        """
        registry.counter("tree_buffer.hits", self.hits)
        registry.counter("tree_buffer.misses", self.misses)
        registry.counter("tree_buffer.evictions", self.evictions)
        registry.counter("tree_buffer.rejected_inserts", 0)
        registry.gauge("tree_buffer.resident_nodes", len(self._lru))
        registry.gauge("tree_buffer.used_bytes", self._lru.used_bytes)
        registry.gauge("tree_buffer.capacity_bytes", self.capacity_bytes)
        registry.gauge("tree_buffer.hit_rate", self.hit_rate)
