"""The 16 Bucket_Tables and the on-chip Bucket_buffer (paper §III-B).

The PCU appends each scanned operation to the Bucket_Table matching its
prefix.  Tables live in off-chip memory; the 2 MB Bucket_buffer absorbs
the appends, so a spill to HBM happens only when a batch's combined
operations exceed the buffer (the spilled bytes are billed by the PCU's
timing model).

:class:`BucketTables` is per-batch state: ``clear()`` starts a new batch.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.config import OP_RECORD_BYTES
from repro.core.prefixing import PrefixExtractor
from repro.errors import ConfigError
from repro.workloads.ops import Operation


class BucketTables:
    """Per-batch operation buckets keyed by prefix."""

    def __init__(
        self,
        extractor: PrefixExtractor,
        n_buckets: int,
        buffer_bytes: int,
    ):
        if n_buckets <= 0:
            raise ConfigError(f"n_buckets must be positive: {n_buckets}")
        if buffer_bytes <= 0:
            raise ConfigError(f"buffer_bytes must be positive: {buffer_bytes}")
        self.extractor = extractor
        self.n_buckets = n_buckets
        self.buffer_bytes = buffer_bytes
        self.buckets: List[List[Operation]] = [[] for _ in range(n_buckets)]
        self.total_ops = 0
        self.spilled_bytes = 0
        self.batches_combined = 0

    def clear(self) -> None:
        """Start a new batch (the Bucket_buffer is recycled)."""
        for bucket in self.buckets:
            bucket.clear()
        self.total_ops = 0

    def combine(self, operations: Sequence[Operation]) -> None:
        """The PCU's Combine_Operation stage for one batch.

        Bucket assignment is computed for the whole batch at once
        (:meth:`PrefixExtractor.buckets_for`); the scatter into buckets
        is a stable argsort + one gather per bucket, which preserves
        arrival order within each bucket exactly like the scalar
        append loop it replaces.
        """
        ops = operations if isinstance(operations, list) else list(operations)
        if ops:
            indices = self.extractor.buckets_for([op.key for op in ops])
            order = np.argsort(indices, kind="stable")
            sorted_ops = np.asarray(ops, dtype=object)[order]
            counts = np.bincount(indices, minlength=self.n_buckets)
            buckets = self.buckets
            start = 0
            for index, count in enumerate(counts.tolist()):
                if count:
                    end = start + count
                    buckets[index].extend(sorted_ops[start:end].tolist())
                    start = end
            self.total_ops += len(ops)
        overflow = self.total_ops * OP_RECORD_BYTES - self.buffer_bytes
        if overflow > 0:
            self.spilled_bytes += overflow
        self.batches_combined += 1

    def occupancy(self) -> List[int]:
        """Operations per bucket (the dispatcher's load view)."""
        return [len(bucket) for bucket in self.buckets]

    @property
    def imbalance(self) -> float:
        """Max-over-mean bucket occupancy (1.0 = perfectly balanced)."""
        counts = self.occupancy()
        total = sum(counts)
        if total == 0:
            return 0.0
        return max(counts) / (total / self.n_buckets)

    def nonempty_buckets(self) -> int:
        return sum(1 for bucket in self.buckets if bucket)
