"""The Shortcut-based Operating Unit (paper §III-C, Fig. 5 right).

Four pipeline stages per operation:

1. ``Index_Shortcut``   — probe the Shortcut_Table for the operation's
   key (2 cycles in the Shortcut_buffer, HBM latency otherwise);
2. ``Traverse_Tree``    — on a valid shortcut, fetch the target (and,
   for writes, its parent) directly by address; otherwise perform the
   top-down partial-key-matching walk, each node through the
   Tree_buffer;
3. ``Trigger_Operation``— apply all coalesced work at the target node;
4. ``Generate_Shortcut``— record the match result for reuse.

Timing model: the stages are pipelined, so in steady state an operation
costs the initiation interval (2 cycles) *unless* it stalls the pipeline —
off-chip fetches and structural modifications are the stalls, and they
are billed at full latency.  Stale shortcuts (the address died under a
split/grow/merge) are detected by validating the fetched node against the
operation's key, then repaired by re-traversal, exactly as §III-C's
"entry needs to be updated when the operation causes a change in the
type of Node_X" requires.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.art.nodes import Leaf
from repro.art.stats import CACHE_LINE_BYTES, lines_for
from repro.art.tree import AdaptiveRadixTree
from repro.core.dispatcher import DispatchedBucket
from repro.core.shortcut_table import ShortcutTable
from repro.engines.base import apply_operation
from repro.model.costs import FpgaCosts
from repro.workloads.ops import OpKind, Operation

#: Steady-state initiation interval of the 4-stage pipeline (cycles/op).
PIPELINE_II = 2


@dataclass
class BucketOutcome:
    """Counters and timing for one bucket processed by one SOU."""

    bucket_id: int
    sou_id: int
    n_ops: int = 0
    cycles: int = 0
    partial_key_matches: int = 0
    nodes_visited: int = 0
    bytes_fetched: int = 0
    bytes_used: int = 0
    offchip_lines: int = 0
    shortcut_hits: int = 0
    shortcut_misses: int = 0
    stale_shortcuts: int = 0
    #: Stale hits whose entry was tampered with by fault injection; each
    #: paid a bounded retry-with-backoff before falling back to a full
    #: traversal (see :mod:`repro.faults`).
    corrupted_shortcut_hits: int = 0
    traversals: int = 0
    # (target_node_id, is_write) of ops that modified an ancestor shared
    # across buckets — the only ops needing cross-SOU synchronisation.
    global_sync_targets: List[int] = field(default_factory=list)
    # Coalesced groups (same key, >=2 ops, >=1 write) in this bucket:
    # each acquires its node lock once — "a single lock for multiple
    # operations" (paper §IV-B) — and is counted as one contention.
    coalesced_contended_groups: int = 0
    # Completion cycle (within this bucket) of every op, for latency.
    completion_cycles: List[int] = field(default_factory=list)
    op_ids: List[int] = field(default_factory=list)
    node_access_counts: Counter = field(default_factory=Counter)
    seen_nodes: set = field(default_factory=set)


class ShortcutOperatingUnit:
    """One SOU; stateless across buckets except through shared tables."""

    def __init__(
        self,
        sou_id: int,
        tree: AdaptiveRadixTree,
        shortcuts: Optional[ShortcutTable],
        tree_buffer,
        costs: FpgaCosts,
        shared_depth_bytes: int,
        injector=None,
    ):
        self.sou_id = sou_id
        self.tree = tree
        self.shortcuts = shortcuts
        self.tree_buffer = tree_buffer
        self.costs = costs
        #: Key-byte depth at or above which a node is shared across
        #: buckets (ancestors of the bucket-discriminating byte).
        self.shared_depth_bytes = shared_depth_bytes
        #: Optional :class:`~repro.faults.FaultInjector`: supplies the
        #: slow-down multiplier and accounts corrupted-shortcut retries.
        self.injector = injector

    # ------------------------------------------------------------------

    def process_bucket(self, bucket: DispatchedBucket) -> BucketOutcome:
        outcome = BucketOutcome(bucket_id=bucket.bucket_id, sou_id=self.sou_id)
        outcome.coalesced_contended_groups = count_contended_groups(
            bucket.operations
        )
        slowdown = (
            self.injector.slowdown_factor(self.sou_id)
            if self.injector is not None
            else 1.0
        )
        clock = 0
        for op in bucket.operations:
            cycles = self._process_op(op, bucket.value, outcome)
            if slowdown > 1.0:
                cycles = math.ceil(cycles * slowdown)
            clock += cycles
            outcome.completion_cycles.append(clock)
            outcome.op_ids.append(op.op_id)
            outcome.n_ops += 1
        outcome.cycles = clock
        return outcome

    # ------------------------------------------------------------------

    def _process_op(
        self, op: Operation, bucket_value: int, outcome: BucketOutcome
    ) -> int:
        """Execute one operation; returns its pipeline cycles."""
        costs = self.costs
        stall_cycles = 0

        entry = None
        if self.shortcuts is not None:
            entry, on_chip = self.shortcuts.lookup(op.key)
            if not on_chip:
                offchip = costs.shortcut_offchip_cycles - costs.shortcut_lookup_cycles
                stall_cycles += -(-offchip // costs.memory_parallelism)
            if entry is not None and op.kind in (OpKind.READ, OpKind.WRITE):
                served, fast_cycles = self._try_shortcut_path(
                    op, entry, bucket_value, outcome
                )
                if served:
                    return max(PIPELINE_II, stall_cycles + fast_cycles)
                if entry.corrupted:
                    # Fault-injected corruption: the unit retries the
                    # off-chip table with exponential backoff before
                    # conceding (a transient-corruption heuristic), then
                    # repairs by full traversal like any stale entry.
                    stall_cycles += self._corrupted_retry(outcome)
                outcome.stale_shortcuts += 1
                self.shortcuts.note_stale(op.key)

        # Full traversal (Traverse_Tree the long way).
        record = apply_operation(self.tree, op)
        outcome.traversals += 1
        outcome.shortcut_misses += 1
        for touch in record.touches:
            stall_cycles += self._fetch_node(
                touch.address,
                touch.size_bytes,
                touch.fetch_bytes,
                bucket_value,
                outcome,
            )
            self._count_visit(
                touch.node_id, touch.fetch_bytes, touch.used_bytes, outcome
            )
            if touch.kind != "Leaf":
                outcome.partial_key_matches += 1

        if record.structure_modified:
            stall_cycles += costs.structure_op_cycles
            self._invalidate_dead_nodes(record)
            if self._modifies_shared_ancestor(record):
                outcome.global_sync_targets.append(record.target_node_id or -1)

        if (
            self.shortcuts is not None
            and record.outcome in ("hit", "updated")
            and record.target_address is not None
        ):
            self.shortcuts.generate(
                op.key, record.target_address, record.parent_address
            )
        if self.shortcuts is not None and record.outcome == "deleted":
            self.shortcuts.drop(op.key)

        return max(PIPELINE_II, stall_cycles)

    def _corrupted_retry(self, outcome: BucketOutcome) -> int:
        """Bill the bounded retry-with-backoff on a corrupted entry."""
        limit = (
            self.injector.shortcut_retry_limit if self.injector is not None else 2
        )
        base = self.costs.shortcut_retry_base_cycles
        retry_cycles = sum(base << attempt for attempt in range(limit))
        outcome.corrupted_shortcut_hits += 1
        if self.injector is not None:
            self.injector.note_corrupted_hit(retry_cycles)
        return retry_cycles

    def _try_shortcut_path(
        self, op: Operation, entry, bucket_value: int, outcome: BucketOutcome
    ) -> Tuple[bool, int]:
        """Serve the op directly from a shortcut; False if the entry is stale."""
        node = self.tree.node_at(entry.target_address)
        if not isinstance(node, Leaf) or node.key != op.key:
            return False, 0
        used = node.used_bytes_for_descent()
        span = min(node.size_bytes, 16 + used)
        cycles = self._fetch_node(
            node.address, node.size_bytes, span, bucket_value, outcome
        )
        self._count_visit(node.node_id, span, used, outcome)
        if op.kind is OpKind.WRITE:
            node.value = op.value
            parent = (
                self.tree.node_at(entry.parent_address)
                if entry.parent_address is not None
                else None
            )
            if parent is not None:
                parent_used = parent.used_bytes_for_descent()
                parent_span = min(parent.size_bytes, 16 + parent_used)
                cycles += self._fetch_node(
                    parent.address,
                    parent.size_bytes,
                    parent_span,
                    bucket_value,
                    outcome,
                )
                self._count_visit(parent.node_id, parent_span, parent_used, outcome)
        outcome.shortcut_hits += 1
        return True, max(PIPELINE_II, cycles)

    # ------------------------------------------------------------------

    def _fetch_node(
        self,
        address: int,
        size_bytes: int,
        fetch_bytes: int,
        bucket_value: int,
        outcome: BucketOutcome,
    ) -> int:
        """Fetch one node through the Tree_buffer; returns stall cycles.

        An off-chip miss does not freeze the SOU for the full HBM latency:
        the pipeline keeps ``memory_parallelism`` requests in flight, so
        the *throughput* cost per miss is the latency divided by the
        outstanding-request depth (standard latency hiding).  A miss
        moves only the lines the descent indexes (``fetch_bytes``), but
        the buffer reserves the node's full footprint.
        """
        if self.tree_buffer.lookup(address):
            # Refresh the resident node's value with the current batch's
            # estimate so aged entries recover while they stay hot.
            self.tree_buffer.set_value(address, float(bucket_value))
            return 0  # BRAM access is hidden by the pipeline
        outcome.offchip_lines += lines_for(fetch_bytes)
        self.tree_buffer.admit(address, size_bytes, float(bucket_value))
        mlp = self.costs.memory_parallelism
        return -(-self.costs.tree_offchip_cycles // mlp)

    @staticmethod
    def _count_visit(
        node_id: int, fetch_bytes: int, used_bytes: int, outcome: BucketOutcome
    ) -> None:
        outcome.nodes_visited += 1
        outcome.node_access_counts[node_id] += 1
        outcome.seen_nodes.add(node_id)
        outcome.bytes_fetched += lines_for(fetch_bytes) * CACHE_LINE_BYTES
        outcome.bytes_used += used_bytes

    def _invalidate_dead_nodes(self, record) -> None:
        """Evict buffer entries whose addresses died in this mutation."""
        for touch in record.touches:
            if self.tree.node_at(touch.address) is None:
                self.tree_buffer.invalidate(touch.address)

    def _modifies_shared_ancestor(self, record) -> bool:
        """Did the op modify (or lock) a node shared across buckets?

        A node whose subtree begins at a key-byte depth at or above the
        bucket-discriminating byte covers keys of several buckets; a
        structural change there must synchronise across SOUs.  ROWEX
        additionally locks the *parent* when the target changes type
        (§II-A), so a type change directly below a shared ancestor also
        synchronises.  Byte depth of the i-th path node = sum of
        (prefix_len + 1 edge byte) of the nodes above it, recoverable
        from the recorded ``used_bytes`` (= prefix_len + 1 + 8).
        """
        return modifies_shared_ancestor(record, self.shared_depth_bytes)


def count_contended_groups(operations) -> int:
    """Coalesced same-key groups (>=2 ops, >=1 write) in one bucket.

    Under the CTT model each such group serialises behind a *single*
    lock acquisition, so it registers one contention where an
    operation-centric engine would register ``k - 1``.
    """
    counts: Counter = Counter()
    writers: set = set()
    for op in operations:
        counts[op.key] += 1
        if op.kind.is_write:
            writers.add(op.key)
    return sum(1 for key, count in counts.items() if count > 1 and key in writers)


def modifies_shared_ancestor(record, shared_depth_bytes: int) -> bool:
    """Shared-ancestor test used by both DCART and DCART-C (see above).

    The target of a split/grow may be a *newly created* node absent from
    the touch list; it then replaced the last node the walk touched and
    sits at that node's byte depth.
    """
    if record.target_node_id is None or not record.touches:
        return False
    depths = []
    depth = 0
    target_index = None
    for i, touch in enumerate(record.touches):
        depths.append(depth)
        if touch.node_id == record.target_node_id:
            target_index = i
            break
        if touch.kind != "Leaf":
            depth += max(0, touch.used_bytes - 9) + 1
    if target_index is None:
        target_index = len(depths) - 1
    if depths[target_index] <= shared_depth_bytes:
        return True
    # A node-type change locks the parent as well (ROWEX §II-A); if that
    # parent sits at shared depth the lock crosses buckets.
    if record.node_type_changed and target_index > 0:
        return depths[target_index - 1] <= shared_depth_bytes
    return False
