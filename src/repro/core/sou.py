"""The Shortcut-based Operating Unit (paper §III-C, Fig. 5 right).

Four pipeline stages per operation:

1. ``Index_Shortcut``   — probe the Shortcut_Table for the operation's
   key (2 cycles in the Shortcut_buffer, HBM latency otherwise);
2. ``Traverse_Tree``    — on a valid shortcut, fetch the target (and,
   for writes, its parent) directly by address; otherwise perform the
   top-down partial-key-matching walk, each node through the
   Tree_buffer;
3. ``Trigger_Operation``— apply all coalesced work at the target node;
4. ``Generate_Shortcut``— record the match result for reuse.

Timing model: the stages are pipelined, so in steady state an operation
costs the initiation interval (2 cycles) *unless* it stalls the pipeline —
off-chip fetches and structural modifications are the stalls, and they
are billed at full latency.  Stale shortcuts (the address died under a
split/grow/merge) are detected by validating the fetched node against the
operation's key, then repaired by re-traversal, exactly as §III-C's
"entry needs to be updated when the operation causes a change in the
type of Node_X" requires.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Iterable, List, Optional

from repro.art.nodes import Leaf
from repro.art.stats import CACHE_LINE_BYTES, TraversalRecord
from repro.art.tree import AdaptiveRadixTree
from repro.core.config import SHORTCUT_ENTRY_BYTES
from repro.core.dispatcher import DispatchedBucket
from repro.core.shortcut_table import ShortcutTable
from repro.core.tree_buffer import ValueAwareTreeBuffer
from repro.engines.base import apply_operation
from repro.errors import ConfigError
from repro.model.costs import FpgaCosts
from repro.workloads.ops import Operation, OpKind

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Steady-state initiation interval of the 4-stage pipeline (cycles/op).
PIPELINE_II = 2


@dataclass(slots=True)
class BucketOutcome:
    """Counters and timing for one bucket processed by one SOU."""

    bucket_id: int
    sou_id: int
    n_ops: int = 0
    cycles: int = 0
    partial_key_matches: int = 0
    nodes_visited: int = 0
    bytes_fetched: int = 0
    bytes_used: int = 0
    offchip_lines: int = 0
    shortcut_hits: int = 0
    shortcut_misses: int = 0
    stale_shortcuts: int = 0
    #: Stale hits whose entry was tampered with by fault injection; each
    #: paid a bounded retry-with-backoff before falling back to a full
    #: traversal (see :mod:`repro.faults`).
    corrupted_shortcut_hits: int = 0
    traversals: int = 0
    # (target_node_id, is_write) of ops that modified an ancestor shared
    # across buckets — the only ops needing cross-SOU synchronisation.
    global_sync_targets: List[int] = field(default_factory=list)
    # Coalesced groups (same key, >=2 ops, >=1 write) in this bucket:
    # each acquires its node lock once — "a single lock for multiple
    # operations" (paper §IV-B) — and is counted as one contention.
    coalesced_contended_groups: int = 0
    # Completion cycle (within this bucket) of every op, for latency.
    completion_cycles: List[int] = field(default_factory=list)
    op_ids: List[int] = field(default_factory=list)
    # Node ids in visit order; the accelerator folds every bucket's list
    # into one Counter at aggregation time (one counting pass over the
    # run instead of a per-bucket count plus a per-bucket merge).
    visited_ids: List[int] = field(default_factory=list)


class ShortcutOperatingUnit:
    """One SOU; stateless across buckets except through shared tables."""

    def __init__(
        self,
        sou_id: int,
        tree: AdaptiveRadixTree,
        shortcuts: Optional[ShortcutTable],
        tree_buffer: Any,
        costs: FpgaCosts,
        shared_depth_bytes: int,
        injector: Any = None,
    ) -> None:
        self.sou_id = sou_id
        self.tree = tree
        self.shortcuts = shortcuts
        self.tree_buffer = tree_buffer
        self.costs = costs
        #: Key-byte depth at or above which a node is shared across
        #: buckets (ancestors of the bucket-discriminating byte).
        self.shared_depth_bytes = shared_depth_bytes
        #: Optional :class:`~repro.faults.FaultInjector`: supplies the
        #: slow-down multiplier and accounts corrupted-shortcut retries.
        self.injector = injector
        # Cumulative run totals for the metrics registry.  Updated once
        # per *bucket* (from the hot loop's locals), never per op, so
        # telemetry costs nothing on the inner path.
        self.buckets_processed = 0
        self.ops_processed = 0
        self.busy_cycles = 0
        self.shortcut_hits_total = 0
        self.shortcut_misses_total = 0
        self.shortcut_buffer_hits_total = 0
        self.shortcut_buffer_misses_total = 0
        self.stale_shortcuts_total = 0
        self.corrupted_hits_total = 0
        self.traversals_total = 0
        self.nodes_visited_total = 0
        self.offchip_lines_total = 0
        self.structure_mods_total = 0
        self.shortcuts_generated_total = 0
        self.sync_ops_total = 0
        # Stall constants, hoisted out of the per-op loop: the throughput
        # cost of an off-chip access is its latency divided by the
        # outstanding-request depth (latency hiding), rounded up.
        mlp = costs.memory_parallelism
        self._shortcut_miss_stall = -(
            -(costs.shortcut_offchip_cycles - costs.shortcut_lookup_cycles)
            // mlp
        )
        self._tree_miss_stall = -(-costs.tree_offchip_cycles // mlp)

    # ------------------------------------------------------------------

    def process_bucket(self, bucket: DispatchedBucket) -> BucketOutcome:
        """Drain one bucket through the 4-stage pipeline.

        This is the simulator's innermost loop (hundreds of thousands of
        calls per run), so the shortcut fast path, the Tree_buffer fetch
        and the per-visit counters are inlined here with every attribute
        lookup hoisted to a local.  The cycle arithmetic is kept
        *identical* to the original per-op helpers — the golden
        determinism test (tests/harness/test_golden_determinism.py)
        holds this loop to bit-identical results.
        """
        ops = bucket.operations
        outcome = BucketOutcome(bucket_id=bucket.bucket_id, sou_id=self.sou_id)
        outcome.coalesced_contended_groups = count_contended_groups(ops)
        injector = self.injector
        slowdown = (
            injector.slowdown_factor(self.sou_id)
            if injector is not None
            else 1.0
        )
        slow = slowdown > 1.0

        tree = self.tree
        node_at = tree._by_address.get
        shortcuts = self.shortcuts
        # The Shortcut_buffer probe (LruBuffer.lookup + dict get + pull
        # on-chip) is unrolled here: one probe per operation makes the
        # call overhead itself measurable.  Accounting (hits, misses,
        # insert order) matches ShortcutTable.lookup exactly.
        if shortcuts is not None:
            sc_entries_get = shortcuts._entries.get
            sc_buf = shortcuts.buffer
            sc_buf_entries = sc_buf._entries
            sc_buf_move = sc_buf_entries.move_to_end
            sc_buf_insert = sc_buf.insert
            sc_buf_pop = sc_buf_entries.popitem
            sc_cap = sc_buf.capacity_bytes
        tb = self.tree_buffer
        fetch_node = tb.fetch
        fvalue = float(bucket.value)
        # When the Tree_buffer is the (default) value-aware one, its
        # fetch is fully inlined at the three call sites below — probe,
        # hit refresh, and miss admit-with-eviction mirror
        # ValueAwareTreeBuffer.fetch statement for statement, and the
        # golden determinism test holds the two to identical state.  The
        # normalised value is loop-invariant per bucket (one value, one
        # decay multiplier), so the division happens once here.
        value_aware = type(tb) is ValueAwareTreeBuffer
        if value_aware:
            tb_resident = tb._resident
            tb_resident_get = tb_resident.get
            tb_heap = tb._heap
            tb_capacity = tb.capacity_bytes
            norm = fvalue / tb._mult
        shortcut_miss_stall = self._shortcut_miss_stall
        tree_miss_stall = self._tree_miss_stall
        structure_cycles = self.costs.structure_op_cycles
        read_kind = OpKind.READ
        write_kind = OpKind.WRITE
        ceil = math.ceil

        clock = 0
        completions_append = outcome.completion_cycles.append
        sync_targets = outcome.global_sync_targets
        visited_ids: List[int] = []  # node ids, in visit order
        visited_append = visited_ids.append
        bytes_fetched = 0
        bytes_used = 0
        offchip_lines = 0
        partial_matches = 0
        shortcut_hits = 0
        shortcut_misses = 0
        stale_shortcuts = 0
        traversals = 0
        sc_buf_hits = 0
        sc_buf_misses = 0
        structure_mods = 0
        shortcuts_generated = 0

        for op in ops:
            stall_cycles = 0
            key = op.key
            kind = op.kind
            served = False

            entry = None
            if shortcuts is not None:
                entry = sc_entries_get(key)
                if key in sc_buf_entries:
                    sc_buf_move(key)
                    sc_buf_hits += 1
                else:
                    sc_buf_misses += 1
                    stall_cycles = shortcut_miss_stall
                    if entry is not None:
                        # Off-chip hit pulls the entry on chip for reuse
                        # (LruBuffer.insert inlined: the key is known to
                        # be absent from the buffer on this branch).
                        if SHORTCUT_ENTRY_BYTES > sc_cap:
                            sc_buf_insert(key, SHORTCUT_ENTRY_BYTES)
                        else:
                            scb_used = sc_buf.used_bytes
                            while scb_used + SHORTCUT_ENTRY_BYTES > sc_cap:
                                _, old_size = sc_buf_pop(last=False)
                                scb_used -= old_size
                                sc_buf.evictions += 1
                            sc_buf_entries[key] = SHORTCUT_ENTRY_BYTES
                            sc_buf.used_bytes = (
                                scb_used + SHORTCUT_ENTRY_BYTES
                            )
                if entry is not None and (
                    kind is read_kind or kind is write_kind
                ):
                    # Shortcut fast path: fetch the target by address and
                    # validate it still holds this op's key.
                    node = node_at(entry.target_address)
                    if type(node) is Leaf and node.key == key:
                        used = len(node.key) + 8  # used_bytes_for_descent
                        # For a Leaf, size_bytes (header + key + pointer)
                        # equals header + used, so the fetch span *is*
                        # the node size.
                        size = 16 + used
                        lines = -(-size // CACHE_LINE_BYTES)
                        addr = node.address
                        if not value_aware:
                            hit = fetch_node(addr, size, fvalue)
                        else:
                            tb_entry = tb_resident_get(addr)
                            if tb_entry is not None:
                                tb.hits += 1
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, tb_entry[2])
                                heappush(tb_heap, (norm, seq, addr))
                                hit = True
                            else:
                                tb.misses += 1
                                if size > tb_capacity:
                                    raise ConfigError(
                                        f"node of {size} B exceeds "
                                        f"Tree_buffer capacity"
                                    )
                                admitted = True
                                while tb.used_bytes + size > tb_capacity:
                                    victim_addr = None
                                    while tb_heap:
                                        victim = heappop(tb_heap)
                                        cur = tb_resident_get(victim[2])
                                        if (
                                            cur is not None
                                            and cur[0] == victim[0]
                                            and cur[1] == victim[1]
                                        ):
                                            victim_addr = victim[2]
                                            break
                                    if victim_addr is None:
                                        break
                                    if victim[0] > norm:
                                        heappush(tb_heap, victim)
                                        tb.rejected_inserts += 1
                                        admitted = False
                                        break
                                    tb.used_bytes -= tb_resident.pop(
                                        victim_addr
                                    )[2]
                                    tb.evictions += 1
                                if admitted:
                                    tb.used_bytes += size
                                    seq = tb._seq + 1
                                    tb._seq = seq
                                    tb_resident[addr] = (norm, seq, size)
                                    heappush(tb_heap, (norm, seq, addr))
                                hit = False
                        if hit:
                            fast_cycles = 0
                        else:
                            offchip_lines += lines
                            fast_cycles = tree_miss_stall
                        visited_append(node.node_id)
                        bytes_fetched += lines * CACHE_LINE_BYTES
                        bytes_used += used
                        if kind is write_kind:
                            node.value = op.value
                            parent_address = entry.parent_address
                            parent = (
                                node_at(parent_address)
                                if parent_address is not None
                                else None
                            )
                            if parent is not None:
                                if type(parent) is Leaf:
                                    p_used = len(parent.key) + 8
                                    p_size = 16 + p_used
                                    p_span = p_size
                                else:
                                    p_used = len(parent.prefix) + 9
                                    p_size = parent.size_bytes
                                    p_span = (
                                        p_size
                                        if p_size < 16 + p_used
                                        else 16 + p_used
                                    )
                                p_lines = -(-p_span // CACHE_LINE_BYTES)
                                addr = parent.address
                                if not value_aware:
                                    hit = fetch_node(addr, p_size, fvalue)
                                else:
                                    tb_entry = tb_resident_get(addr)
                                    if tb_entry is not None:
                                        tb.hits += 1
                                        seq = tb._seq + 1
                                        tb._seq = seq
                                        tb_resident[addr] = (
                                            norm, seq, tb_entry[2],
                                        )
                                        heappush(tb_heap, (norm, seq, addr))
                                        hit = True
                                    else:
                                        tb.misses += 1
                                        if p_size > tb_capacity:
                                            raise ConfigError(
                                                f"node of {p_size} B exceeds"
                                                f" Tree_buffer capacity"
                                            )
                                        admitted = True
                                        while (
                                            tb.used_bytes + p_size
                                            > tb_capacity
                                        ):
                                            victim_addr = None
                                            while tb_heap:
                                                victim = heappop(tb_heap)
                                                cur = tb_resident_get(
                                                    victim[2]
                                                )
                                                if (
                                                    cur is not None
                                                    and cur[0] == victim[0]
                                                    and cur[1] == victim[1]
                                                ):
                                                    victim_addr = victim[2]
                                                    break
                                            if victim_addr is None:
                                                break
                                            if victim[0] > norm:
                                                heappush(tb_heap, victim)
                                                tb.rejected_inserts += 1
                                                admitted = False
                                                break
                                            tb.used_bytes -= tb_resident.pop(
                                                victim_addr
                                            )[2]
                                            tb.evictions += 1
                                        if admitted:
                                            tb.used_bytes += p_size
                                            seq = tb._seq + 1
                                            tb._seq = seq
                                            tb_resident[addr] = (
                                                norm, seq, p_size,
                                            )
                                            heappush(
                                                tb_heap, (norm, seq, addr)
                                            )
                                        hit = False
                                if not hit:
                                    offchip_lines += p_lines
                                    fast_cycles += tree_miss_stall
                                visited_append(parent.node_id)
                                bytes_fetched += p_lines * CACHE_LINE_BYTES
                                bytes_used += p_used
                        shortcut_hits += 1
                        if fast_cycles < PIPELINE_II:
                            fast_cycles = PIPELINE_II
                        cycles = stall_cycles + fast_cycles
                        if cycles < PIPELINE_II:
                            cycles = PIPELINE_II
                        served = True
                    else:
                        if entry.corrupted:
                            # Fault-injected corruption: the unit retries
                            # the off-chip table with exponential backoff
                            # before conceding, then repairs by full
                            # traversal like any stale entry.
                            stall_cycles += self._corrupted_retry(outcome)
                        stale_shortcuts += 1
                        shortcuts.note_stale(key)

            if not served:
                # Full traversal (Traverse_Tree the long way).
                record = apply_operation(tree, op)
                traversals += 1
                shortcut_misses += 1
                for t_node_id, addr, t_size, t_used, t_kind in record.touches:
                    fetch = t_size if t_size < 16 + t_used else 16 + t_used
                    lines = -(-fetch // CACHE_LINE_BYTES)
                    if not value_aware:
                        hit = fetch_node(addr, t_size, fvalue)
                    else:
                        tb_entry = tb_resident_get(addr)
                        if tb_entry is not None:
                            tb.hits += 1
                            seq = tb._seq + 1
                            tb._seq = seq
                            tb_resident[addr] = (norm, seq, tb_entry[2])
                            heappush(tb_heap, (norm, seq, addr))
                            hit = True
                        else:
                            tb.misses += 1
                            if t_size > tb_capacity:
                                raise ConfigError(
                                    f"node of {t_size} B exceeds "
                                    f"Tree_buffer capacity"
                                )
                            admitted = True
                            while tb.used_bytes + t_size > tb_capacity:
                                victim_addr = None
                                while tb_heap:
                                    victim = heappop(tb_heap)
                                    cur = tb_resident_get(victim[2])
                                    if (
                                        cur is not None
                                        and cur[0] == victim[0]
                                        and cur[1] == victim[1]
                                    ):
                                        victim_addr = victim[2]
                                        break
                                if victim_addr is None:
                                    break
                                if victim[0] > norm:
                                    heappush(tb_heap, victim)
                                    tb.rejected_inserts += 1
                                    admitted = False
                                    break
                                tb.used_bytes -= tb_resident.pop(
                                    victim_addr
                                )[2]
                                tb.evictions += 1
                            if admitted:
                                tb.used_bytes += t_size
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, t_size)
                                heappush(tb_heap, (norm, seq, addr))
                            hit = False
                    if not hit:
                        offchip_lines += lines
                        stall_cycles += tree_miss_stall
                    visited_append(t_node_id)
                    bytes_fetched += lines * CACHE_LINE_BYTES
                    bytes_used += t_used
                    if t_kind != "Leaf":
                        partial_matches += 1

                if record.structure_modified:
                    stall_cycles += structure_cycles
                    structure_mods += 1
                    self._invalidate_dead_nodes(record)
                    if modifies_shared_ancestor(
                        record, self.shared_depth_bytes
                    ):
                        sync_targets.append(record.target_node_id or -1)

                if shortcuts is not None:
                    record_outcome = record.outcome
                    if (
                        record_outcome in ("hit", "updated")
                        and record.target_address is not None
                    ):
                        shortcuts.generate(
                            key, record.target_address, record.parent_address
                        )
                        shortcuts_generated += 1
                    elif record_outcome == "deleted":
                        shortcuts.drop(key)

                cycles = (
                    stall_cycles if stall_cycles > PIPELINE_II else PIPELINE_II
                )

            if slow:
                cycles = ceil(cycles * slowdown)
            clock += cycles
            completions_append(clock)

        outcome.op_ids = [op.op_id for op in ops]
        if shortcuts is not None:
            sc_buf.hits += sc_buf_hits
            sc_buf.misses += sc_buf_misses
        outcome.n_ops = len(ops)
        outcome.cycles = clock
        outcome.nodes_visited = len(visited_ids)
        outcome.bytes_fetched = bytes_fetched
        outcome.bytes_used = bytes_used
        outcome.offchip_lines = offchip_lines
        outcome.partial_key_matches = partial_matches
        outcome.shortcut_hits = shortcut_hits
        outcome.shortcut_misses = shortcut_misses
        outcome.stale_shortcuts = stale_shortcuts
        outcome.traversals = traversals
        outcome.visited_ids = visited_ids
        # Cumulative totals for report_metrics: one batched update per
        # bucket, off the per-op path.
        self.buckets_processed += 1
        self.ops_processed += outcome.n_ops
        self.busy_cycles += clock
        self.shortcut_hits_total += shortcut_hits
        self.shortcut_misses_total += shortcut_misses
        self.shortcut_buffer_hits_total += sc_buf_hits
        self.shortcut_buffer_misses_total += sc_buf_misses
        self.stale_shortcuts_total += stale_shortcuts
        self.corrupted_hits_total += outcome.corrupted_shortcut_hits
        self.traversals_total += traversals
        self.nodes_visited_total += outcome.nodes_visited
        self.offchip_lines_total += offchip_lines
        self.structure_mods_total += structure_mods
        self.shortcuts_generated_total += shortcuts_generated
        self.sync_ops_total += len(sync_targets)
        return outcome

    def report_metrics(self, registry: "MetricsRegistry") -> None:
        """Write this unit's run totals into a MetricsRegistry.

        Per-unit counters are namespaced ``sou.<id>.*`` with one group
        per pipeline stage (Fig. 5 right); the unqualified ``sou.*``
        counters accumulate across units (each unit adds its share) and
        back the legacy ``result.extra`` view.
        """
        sid = self.sou_id
        counter = registry.counter
        counter(f"sou.{sid}.buckets", self.buckets_processed)
        counter(f"sou.{sid}.ops", self.ops_processed)
        counter(f"sou.{sid}.busy_cycles", self.busy_cycles)
        # Stage 1: Index_Shortcut (Shortcut_buffer probe + table lookup).
        counter(
            f"sou.{sid}.stage.index_shortcut.hits", self.shortcut_hits_total
        )
        counter(
            f"sou.{sid}.stage.index_shortcut.misses",
            self.shortcut_misses_total,
        )
        counter(
            f"sou.{sid}.stage.index_shortcut.buffer_hits",
            self.shortcut_buffer_hits_total,
        )
        counter(
            f"sou.{sid}.stage.index_shortcut.buffer_misses",
            self.shortcut_buffer_misses_total,
        )
        counter(
            f"sou.{sid}.stage.index_shortcut.stale", self.stale_shortcuts_total
        )
        counter(
            f"sou.{sid}.stage.index_shortcut.corrupted_hits",
            self.corrupted_hits_total,
        )
        # Stage 2: Traverse_Tree.
        counter(
            f"sou.{sid}.stage.traverse_tree.traversals", self.traversals_total
        )
        counter(
            f"sou.{sid}.stage.traverse_tree.nodes_visited",
            self.nodes_visited_total,
        )
        counter(
            f"sou.{sid}.stage.traverse_tree.offchip_lines",
            self.offchip_lines_total,
        )
        # Stage 3: Trigger_Operation.
        counter(f"sou.{sid}.stage.trigger_operation.ops", self.ops_processed)
        counter(
            f"sou.{sid}.stage.trigger_operation.structure_mods",
            self.structure_mods_total,
        )
        counter(
            f"sou.{sid}.stage.trigger_operation.global_sync_ops",
            self.sync_ops_total,
        )
        # Stage 4: Generate_Shortcut.
        counter(
            f"sou.{sid}.stage.generate_shortcut.generated",
            self.shortcuts_generated_total,
        )
        # Cross-unit aggregates (the extra view reads these).
        counter("sou.shortcut_hits", self.shortcut_hits_total)
        counter("sou.shortcut_misses", self.shortcut_misses_total)
        counter("sou.traversals", self.traversals_total)
        counter("sou.stale_shortcut_repairs", self.stale_shortcuts_total)
        counter("sou.busy_cycles", self.busy_cycles)
        self._report_occupancy(registry)

    def _report_occupancy(self, registry: "MetricsRegistry") -> None:
        """Per-level batch occupancy — only the vectorized SOU has any."""

    def _corrupted_retry(self, outcome: BucketOutcome) -> int:
        """Bill the bounded retry-with-backoff on a corrupted entry."""
        limit = (
            self.injector.shortcut_retry_limit if self.injector is not None else 2
        )
        base = self.costs.shortcut_retry_base_cycles
        retry_cycles = sum(base << attempt for attempt in range(limit))
        outcome.corrupted_shortcut_hits += 1
        if self.injector is not None:
            self.injector.note_corrupted_hit(retry_cycles)
        return retry_cycles

    def _invalidate_dead_nodes(self, record: TraversalRecord) -> None:
        """Evict buffer entries whose addresses died in this mutation."""
        for touch in record.touches:
            if self.tree.node_at(touch.address) is None:
                self.tree_buffer.invalidate(touch.address)

    def _modifies_shared_ancestor(self, record: TraversalRecord) -> bool:
        """Did the op modify (or lock) a node shared across buckets?

        A node whose subtree begins at a key-byte depth at or above the
        bucket-discriminating byte covers keys of several buckets; a
        structural change there must synchronise across SOUs.  ROWEX
        additionally locks the *parent* when the target changes type
        (§II-A), so a type change directly below a shared ancestor also
        synchronises.  Byte depth of the i-th path node = sum of
        (prefix_len + 1 edge byte) of the nodes above it, recoverable
        from the recorded ``used_bytes`` (= prefix_len + 1 + 8).
        """
        return modifies_shared_ancestor(record, self.shared_depth_bytes)


def count_contended_groups(operations: Iterable[Operation]) -> int:
    """Coalesced same-key groups (>=2 ops, >=1 write) in one bucket.

    Under the CTT model each such group serialises behind a *single*
    lock acquisition, so it registers one contention where an
    operation-centric engine would register ``k - 1``.
    """
    if not isinstance(operations, list):
        operations = list(operations)
    counts = Counter([op.key for op in operations])
    if len(counts) == len(operations):
        return 0  # every key unique: nothing coalesces
    write, delete = OpKind.WRITE, OpKind.DELETE
    writers = {
        op.key for op in operations if op.kind is write or op.kind is delete
    }
    return sum(1 for key, count in counts.items() if count > 1 and key in writers)


def modifies_shared_ancestor(
    record: TraversalRecord, shared_depth_bytes: int
) -> bool:
    """Shared-ancestor test used by both DCART and DCART-C (see above).

    The target of a split/grow may be a *newly created* node absent from
    the touch list; it then replaced the last node the walk touched and
    sits at that node's byte depth.
    """
    if record.target_node_id is None or not record.touches:
        return False
    depths = []
    depth = 0
    target_index = None
    for i, touch in enumerate(record.touches):
        depths.append(depth)
        if touch.node_id == record.target_node_id:
            target_index = i
            break
        if touch.kind != "Leaf":
            depth += max(0, touch.used_bytes - 9) + 1
    if target_index is None:
        target_index = len(depths) - 1
    if depths[target_index] <= shared_depth_bytes:
        return True
    # A node-type change locks the parent as well (ROWEX §II-A); if that
    # parent sits at shared depth the lock crosses buckets.
    if record.node_type_changed and target_index > 0:
        return depths[target_index - 1] <= shared_depth_bytes
    return False
