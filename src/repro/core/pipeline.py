"""A detailed in-order pipeline model (cross-check for the SOU timing).

The SOU's run-time model prices each operation at
``max(pipeline II, off-chip stall cycles)`` (see :mod:`repro.core.sou`).
That is an *approximation* of a real in-order hardware pipeline, and this
module provides the ground truth to validate it against: a classic
reservation-table simulation where operation *i* occupies stage *s* for
a given number of cycles and stages never reorder.

``InOrderPipeline`` is exact and O(ops × stages); the accelerator uses
the analytic model because it is O(ops), and
``tests/core/test_pipeline_model.py`` checks the two agree within a
small bound on representative stall patterns — keeping the fast model
honest.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigError, SimulationError


class InOrderPipeline:
    """An N-stage in-order pipeline with per-op, per-stage latencies."""

    def __init__(self, n_stages: int):
        if n_stages <= 0:
            raise ConfigError(f"pipeline needs >= 1 stage: {n_stages}")
        self.n_stages = n_stages

    def execute(self, stage_cycles: Sequence[Sequence[int]]) -> List[int]:
        """Simulate a sequence of operations.

        ``stage_cycles[i][s]`` is how long op *i* occupies stage *s*
        (>= 1).  Returns each op's completion cycle.  Semantics: op *i*
        enters stage *s* only when (a) it has finished stage *s-1* and
        (b) op *i-1* has left stage *s* — i.e. stages are not skipped
        and ops never overtake (a standard interlocked pipeline).
        """
        completions: List[int] = []
        # leave[s]: cycle at which the previous op left stage s.
        leave = [0] * self.n_stages
        for op_index, cycles in enumerate(stage_cycles):
            if len(cycles) != self.n_stages:
                raise SimulationError(
                    f"op {op_index}: expected {self.n_stages} stage "
                    f"latencies, got {len(cycles)}"
                )
            ready = 0  # when this op finished the previous stage
            for stage, latency in enumerate(cycles):
                if latency <= 0:
                    raise SimulationError(
                        f"op {op_index}: stage {stage} latency must be >= 1"
                    )
                enter = max(ready, leave[stage])
                ready = enter + latency
                leave[stage] = ready
            completions.append(ready)
        return completions

    def total_cycles(self, stage_cycles: Sequence[Sequence[int]]) -> int:
        completions = self.execute(stage_cycles)
        return completions[-1] if completions else 0


def sou_stage_profile(
    shortcut_cycles: int,
    traverse_cycles: int,
    trigger_cycles: int,
    generate_cycles: int,
) -> List[int]:
    """One operation's occupancy of the four SOU stages (Fig. 5 right)."""
    return [
        max(1, shortcut_cycles),
        max(1, traverse_cycles),
        max(1, trigger_cycles),
        max(1, generate_cycles),
    ]


def analytic_cycles(stage_cycles: Sequence[Sequence[int]], ii: int) -> int:
    """The fast model the SOU uses: sum of max(II, slowest stage).

    For an interlocked pipeline, throughput is limited by each op's
    slowest stage (its effective initiation interval); the fill of the
    first op adds the remaining stages once.  The fill term is clamped
    at zero: when the initiation interval already exceeds the first
    op's total stage occupancy, the fill is fully covered by the II
    slot and must not *subtract* cycles from the throughput term.
    """
    if not stage_cycles:
        return 0
    total = 0
    for cycles in stage_cycles:
        total += max(ii, max(cycles))
    # Pipeline fill: the first op's other stages, never negative.
    first = stage_cycles[0]
    fill = sum(first) - max(ii, max(first))
    if fill > 0:
        total += fill
    return total
