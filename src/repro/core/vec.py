"""Vectorized level-wise batch SOU (the ``dcart-vec`` engine).

The scalar :class:`~repro.core.sou.ShortcutOperatingUnit` walks the
tree one *operation* at a time: every level of every walk is a Python
interpreter trip through ``AdaptiveRadixTree.get``/``_upsert``.  This
module advances **all operations of a bucket one tree level per step**
— the level-wise FPGA batch-search structure (Tzschoppe et al.) over
the struct-of-arrays :class:`~repro.art.layout.NodePool` — so the
per-level traversal work becomes a handful of dense numpy operations
instead of a per-op bytecode stream.

Per bucket, a numpy *kernel* precomputes every operation's traversal
against the pool snapshot at bucket entry: the touch sequence (node
row per visited level), hit/miss, and the target/parent addresses of
the stop node.  The bucket loop then replays the scalar SOU's decision
structure exactly — Shortcut_buffer probe, shortcut fast path, stale
repair, Tree_buffer fetches in op order — but traversals *consume* the
precomputed segments (a short loop over prefetched addresses/sizes)
instead of walking the object tree.

Mutating ops (structural inserts, live deletes, scans) fall back to
the scalar ``apply_operation``; the pool is reconciled incrementally
(:meth:`NodePool.refresh_after`) and every address whose row changed
lands in a *dirty* map — ``True`` for a wholesale change (death,
prefix move, type change), or the set of child bytes whose mapping
moved.  A later op's precomputed path is invalidated only if it
crosses a dirty address *at an affected byte* (the kernel records the
byte each lane consumed per node), so one insert at a fan-out node
does not force every other path through that node back to the live
walk.  Predictions are sound because a walk's decisions at a node
depend only on that node's type/prefix/child map, and
``refresh_after`` dirties exactly the addresses/bytes where any of
those changed.

The kernel never consults the Tree_buffer and the buffer never alters
decisions (hits and misses change *cycles*, not behaviour), so the
precompute-then-consume split is exact: the golden determinism test
and the hypothesis differential suite hold the engine bit-identical to
the scalar loop.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Dict, List

import numpy as np

from repro.art.layout import NODE_LEAF, NODE_N16, KeyInterner, NodePool
from repro.art.nodes import Leaf
from repro.art.stats import CACHE_LINE_BYTES
from repro.art.tree import AdaptiveRadixTree
from repro.core.config import SHORTCUT_ENTRY_BYTES
from repro.core.dispatcher import DispatchedBucket
from repro.core.sou import (
    PIPELINE_II,
    BucketOutcome,
    ShortcutOperatingUnit,
    count_contended_groups,
    modifies_shared_ancestor,
)
from repro.core.tree_buffer import ValueAwareTreeBuffer
from repro.engines.base import apply_operation
from repro.errors import ConfigError
from repro.workloads.ops import OpKind

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry


class VecContext:
    """Per-session shared state of the vectorized SOUs.

    One :class:`NodePool` (and its :class:`KeyInterner`) mirrors the
    session's tree for *all* SOUs — buckets are processed sequentially
    within a batch, so a single mirror stays consistent.  ``sync()``
    rebuilds the mirror whenever the tree mutated outside the pool's
    own bookkeeping (durability replay at attach, cluster migration).
    """

    def __init__(self, tree: AdaptiveRadixTree) -> None:
        self.interner = KeyInterner()
        self.pool = NodePool(tree, self.interner)

    def sync(self) -> None:
        self.pool.sync()


class _KernelPlan:
    """Per-bucket kernel output, converted to plain-Python containers.

    Attribute access on numpy scalars is slower than list indexing in
    the per-op consume loop, so everything op- or event-indexed is
    materialised as a list once per bucket.
    """

    __slots__ = (
        "hit", "seg_start", "seg_len", "taddr", "paddr", "term_row",
        "ev_addr", "ev_size", "ev_lines", "ev_nid", "ev_byte",
        "seg_bytes", "seg_used", "seg_pm", "occupancy", "empty_root",
    )

    def __init__(self) -> None:
        self.hit: List[bool] = []
        self.seg_start: List[int] = []
        self.seg_len: List[int] = []
        self.taddr: List[int] = []
        self.paddr: List[int] = []
        self.term_row: List[int] = []
        self.ev_addr: List[int] = []
        self.ev_size: List[int] = []
        self.ev_lines: List[int] = []
        self.ev_nid: List[int] = []
        self.ev_byte: List[int] = []
        self.seg_bytes: List[int] = []
        self.seg_used: List[int] = []
        self.seg_pm: List[int] = []
        self.occupancy: List[int] = []
        self.empty_root = False


def run_kernel(pool: NodePool, kids: np.ndarray) -> _KernelPlan:
    """Level-wise batched traversal of every op key against the pool.

    ``kids`` holds one interned key id per operation.  All lanes start
    at the root row and advance one level per iteration; finished lanes
    (leaf reached, prefix mismatch, key exhausted, absent child byte)
    are retired with boolean masks, descending lanes gather their child
    row by node type — Node4/16 by broadcast compare against the sorted
    key block, Node48/256 by fancy-indexing the 256-way slot table.

    The emitted plan mirrors the scalar walk *exactly*: the touch
    sequence per op (every visited node, terminal included), the hit
    flag, and the target/parent addresses of the stop node.
    """
    plan = _KernelPlan()
    n = int(kids.shape[0])
    root_row = pool.root_row
    if n == 0:
        return plan
    if root_row < 0:
        plan.empty_root = True
        plan.hit = [False] * n
        plan.seg_start = [0] * n
        plan.seg_len = [0] * n
        plan.taddr = [-1] * n
        plan.paddr = [-1] * n
        plan.term_row = [-1] * n
        plan.seg_bytes = [0] * n
        plan.seg_used = [0] * n
        plan.seg_pm = [0] * n
        return plan

    interner = pool.keys
    interner.sync()
    key_bytes = interner.matrix
    key_lens = interner.lens
    node_type = pool.node_type
    plen = pool.plen
    pref_off = pool.pref_off
    blob = pool.blob
    leaf_kid = pool.leaf_kid
    narrow_keys = pool.narrow_keys
    narrow_child = pool.narrow_child
    wide_slot = pool.wide_slot
    wide_child = pool.wide_child

    hit = np.zeros(n, dtype=bool)
    term_row = np.full(n, -1, dtype=np.int64)
    par_row = np.full(n, -1, dtype=np.int64)
    cur = np.full(n, root_row, dtype=np.int64)
    par = np.full(n, -1, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    klens = key_lens[kids]
    active = np.arange(n, dtype=np.int64)
    touch_rows: List[np.ndarray] = []
    touch_ops: List[np.ndarray] = []
    occupancy = plan.occupancy
    blob_hi = len(blob) - 1
    width_hi = key_bytes.shape[1] - 1

    touch_bytes: List[np.ndarray] = []
    while active.size:
        occupancy.append(int(active.size))
        rows = cur[active]
        touch_rows.append(rows)
        touch_ops.append(active)
        # Byte consumed at this node per lane (-2 = none: leaf terminal,
        # prefix mismatch, or key exhausted) — set below for lanes that
        # actually index a child.  Byte-granular dirt checks need it.
        lvl_byte = np.full(active.size, -2, dtype=np.int64)
        touch_bytes.append(lvl_byte)
        kinds = node_type[rows]
        leaf = kinds == NODE_LEAF
        if leaf.any():
            lsel = np.nonzero(leaf)[0]
            lops = active[lsel]
            lrows = rows[lsel]
            hit[lops] = leaf_kid[lrows] == kids[lops]
            term_row[lops] = lrows
            par_row[lops] = par[lops]
        inner = np.nonzero(~leaf)[0]
        if inner.size == 0:
            break
        irows = rows[inner]
        iops = active[inner]
        d = depth[iops]
        ipl = plen[irows]
        ioff = pref_off[irows]
        ikl = klens[iops]
        ikid = kids[iops]
        ok = np.ones(inner.size, dtype=bool)
        max_pl = int(ipl.max())
        for j in range(max_pl):
            rel = ipl > j
            if not rel.any():
                break
            pos = d + j
            in_key = pos < ikl
            mismatch = blob[np.minimum(ioff + j, blob_hi)] != key_bytes[
                ikid, np.minimum(pos, width_hi)
            ]
            ok &= ~(rel & (~in_key | mismatch))
        deep = d + ipl >= ikl
        cand = np.nonzero(ok & ~deep)[0]
        child = np.full(inner.size, -1, dtype=np.int64)
        if cand.size:
            crows = irows[cand]
            byte = key_bytes[ikid[cand], (d + ipl)[cand]].astype(np.int64)
            lvl_byte[inner[cand]] = byte
            narrow = node_type[crows] <= NODE_N16
            if narrow.any():
                nsel = np.nonzero(narrow)[0]
                nrows = crows[nsel]
                eq = narrow_keys[nrows] == byte[nsel, None].astype(np.int16)
                found = eq.any(axis=1)
                slot = eq.argmax(axis=1)
                child[cand[nsel]] = np.where(
                    found, narrow_child[nrows, slot], -1
                )
            wide = np.nonzero(~narrow)[0]
            if wide.size:
                wrows = crows[wide]
                child[cand[wide]] = wide_child[
                    wide_slot[wrows], byte[wide]
                ]
        descend = np.nonzero(child >= 0)[0]
        stop = np.nonzero(child < 0)[0]
        if stop.size:
            sops = iops[stop]
            term_row[sops] = irows[stop]
            par_row[sops] = par[sops]
        if descend.size == 0:
            break
        dops = iops[descend]
        par[dops] = irows[descend]
        cur[dops] = child[descend]
        depth[dops] = (d + ipl)[descend] + 1
        active = dops

    # Flatten level-major touches into op-major segments.
    flat_rows = np.concatenate(touch_rows)
    flat_ops = np.concatenate(touch_ops)
    order = np.argsort(flat_ops, kind="stable")
    rows_o = flat_rows[order]
    counts = np.bincount(flat_ops, minlength=n)
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    inner_o = node_type[rows_o] != NODE_LEAF
    used_o = plen[rows_o] + 8 + inner_o
    size_o = pool.size_bytes[rows_o].astype(np.int64)
    span_o = np.minimum(size_o, 16 + used_o)
    lines_o = (span_o + (CACHE_LINE_BYTES - 1)) // CACHE_LINE_BYTES
    address = pool.address

    plan.hit = hit.tolist()
    plan.seg_start = starts.tolist()
    plan.seg_len = counts.tolist()
    safe_term = np.maximum(term_row, 0)
    safe_par = np.maximum(par_row, 0)
    plan.taddr = np.where(term_row >= 0, address[safe_term], -1).tolist()
    plan.paddr = np.where(par_row >= 0, address[safe_par], -1).tolist()
    plan.term_row = term_row.tolist()
    plan.ev_addr = address[rows_o].tolist()
    plan.ev_size = size_o.tolist()
    plan.ev_lines = lines_o.tolist()
    plan.ev_nid = pool.node_id[rows_o].tolist()
    plan.ev_byte = np.concatenate(touch_bytes)[order].tolist()
    plan.seg_bytes = (
        np.add.reduceat(lines_o * CACHE_LINE_BYTES, starts).tolist()
    )
    plan.seg_used = np.add.reduceat(used_o, starts).tolist()
    plan.seg_pm = (
        np.add.reduceat(inner_o.astype(np.int64), starts).tolist()
    )
    return plan


class VectorizedOperatingUnit(ShortcutOperatingUnit):
    """Drop-in SOU whose traversals consume the level-wise kernel.

    Construction, run totals, metric reporting and the stale/corrupted
    helpers are inherited; only :meth:`process_bucket` differs — and it
    is held bit-identical to the scalar loop by the golden determinism
    test and the hypothesis differential suite.
    """

    def __init__(self, *args: Any, vec_ctx: VecContext, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.vec_ctx = vec_ctx
        #: ``level -> total in-flight lanes`` across all kernel runs;
        #: reported (off by default, like all telemetry) as
        #: ``sou.<id>.level_occupancy.<level>`` so the next PR's
        #: work-stealing can see where batches go sparse.
        self.level_occupancy: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def process_bucket(self, bucket: DispatchedBucket) -> BucketOutcome:
        """Scalar decision loop over kernel-precomputed traversals.

        Statement-for-statement this follows the scalar
        ``ShortcutOperatingUnit.process_bucket`` (same stage-1 probe,
        same inlined Tree_buffer fetch, same cycle arithmetic); the
        only structural difference is the ``use_pred`` branch, where a
        traversal's touch sequence comes from the kernel plan instead
        of a live object-tree walk.
        """
        ops = bucket.operations
        outcome = BucketOutcome(bucket_id=bucket.bucket_id, sou_id=self.sou_id)
        outcome.coalesced_contended_groups = count_contended_groups(ops)
        injector = self.injector
        slowdown = (
            injector.slowdown_factor(self.sou_id)
            if injector is not None
            else 1.0
        )
        slow = slowdown > 1.0

        tree = self.tree
        node_at = tree._by_address.get
        shortcuts = self.shortcuts
        if shortcuts is not None:
            sc_entries_get = shortcuts._entries.get
            sc_buf = shortcuts.buffer
            sc_buf_entries = sc_buf._entries
            sc_buf_move = sc_buf_entries.move_to_end
            sc_buf_insert = sc_buf.insert
            sc_buf_pop = sc_buf_entries.popitem
            sc_cap = sc_buf.capacity_bytes
        tb = self.tree_buffer
        fetch_node = tb.fetch
        fvalue = float(bucket.value)
        value_aware = type(tb) is ValueAwareTreeBuffer
        if value_aware:
            tb_resident = tb._resident
            tb_resident_get = tb_resident.get
            tb_heap = tb._heap
            tb_capacity = tb.capacity_bytes
            norm = fvalue / tb._mult
        shortcut_miss_stall = self._shortcut_miss_stall
        tree_miss_stall = self._tree_miss_stall
        structure_cycles = self.costs.structure_op_cycles
        read_kind = OpKind.READ
        write_kind = OpKind.WRITE
        delete_kind = OpKind.DELETE
        ceil = math.ceil

        clock = 0
        completions_append = outcome.completion_cycles.append
        sync_targets = outcome.global_sync_targets
        visited_ids: List[int] = []
        visited_append = visited_ids.append
        visited_extend = visited_ids.extend
        bytes_fetched = 0
        bytes_used = 0
        offchip_lines = 0
        partial_matches = 0
        shortcut_hits = 0
        shortcut_misses = 0
        stale_shortcuts = 0
        traversals = 0
        sc_buf_hits = 0
        sc_buf_misses = 0
        structure_mods = 0
        shortcuts_generated = 0

        # Kernel: batch-precompute traversals against the pool — but only
        # for ops that can actually reach the traversal branch.  A key
        # with a live Shortcut_Table entry at bucket entry is served by
        # the fast path (or, rarely, repaired live after a stale hit), so
        # kerneling it would be pure waste; at high skew that excludes
        # the vast majority of the bucket.  Lanes are deduplicated by
        # key: the kernel is read-only, so same-key ops share a segment.
        ctx = self.vec_ctx
        ctx.sync()
        pool = ctx.pool
        intern = ctx.interner.intern
        n = len(ops)
        if shortcuts is not None:
            sc_entries = shortcuts._entries
            lane_keys = dict.fromkeys(
                op.key for op in ops if op.key not in sc_entries
            )
        else:
            lane_keys = dict.fromkeys(op.key for op in ops)
        lane_ids = {k: j for j, k in enumerate(lane_keys)}
        lane_get = lane_ids.get
        kids = np.fromiter(
            (intern(k) for k in lane_keys),
            dtype=np.int64,
            count=len(lane_keys),
        )
        plan = run_kernel(pool, kids)
        occ = self.level_occupancy
        for level, lanes in enumerate(plan.occupancy):
            occ[level] = occ.get(level, 0) + lanes
        k_hit = plan.hit
        k_start = plan.seg_start
        k_len = plan.seg_len
        k_taddr = plan.taddr
        k_paddr = plan.paddr
        k_term = plan.term_row
        k_addr = plan.ev_addr
        k_size = plan.ev_size
        k_lines = plan.ev_lines
        k_nid = plan.ev_nid
        k_byte = plan.ev_byte
        k_bytes = plan.seg_bytes
        k_used = plan.seg_used
        k_pm = plan.seg_pm
        # Kernel predictions stay valid for an op until its precomputed
        # path crosses a *semantic* change: an address marked True in
        # ``dirty`` (died, prefix or type moved), or one whose child
        # mapping moved at the byte this path consumed there.  An
        # empty-root kernel has no addresses to mark, so the first
        # structural mutation invalidates everything wholesale.
        dirty: Dict[int, Any] = {}
        dirty_get = dirty.get
        preds_ok = True
        kernel_on_empty = plan.empty_root
        row_of = pool.row_of
        addr_base = pool._addr_base

        for op in ops:
            stall_cycles = 0
            key = op.key
            kind = op.kind
            served = False

            entry = None
            if shortcuts is not None:
                entry = sc_entries_get(key)
                if key in sc_buf_entries:
                    sc_buf_move(key)
                    sc_buf_hits += 1
                else:
                    sc_buf_misses += 1
                    stall_cycles = shortcut_miss_stall
                    if entry is not None:
                        if SHORTCUT_ENTRY_BYTES > sc_cap:
                            sc_buf_insert(key, SHORTCUT_ENTRY_BYTES)
                        else:
                            scb_used = sc_buf.used_bytes
                            while scb_used + SHORTCUT_ENTRY_BYTES > sc_cap:
                                _, old_size = sc_buf_pop(last=False)
                                scb_used -= old_size
                                sc_buf.evictions += 1
                            sc_buf_entries[key] = SHORTCUT_ENTRY_BYTES
                            sc_buf.used_bytes = (
                                scb_used + SHORTCUT_ENTRY_BYTES
                            )
                if entry is not None and (
                    kind is read_kind or kind is write_kind
                ):
                    node = node_at(entry.target_address)
                    if type(node) is Leaf and node.key == key:
                        used = len(node.key) + 8
                        size = 16 + used
                        lines = -(-size // CACHE_LINE_BYTES)
                        addr = node.address
                        if not value_aware:
                            hit = fetch_node(addr, size, fvalue)
                        else:
                            tb_entry = tb_resident_get(addr)
                            if tb_entry is not None:
                                tb.hits += 1
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, tb_entry[2])
                                heappush(tb_heap, (norm, seq, addr))
                                hit = True
                            else:
                                tb.misses += 1
                                if size > tb_capacity:
                                    raise ConfigError(
                                        f"node of {size} B exceeds "
                                        f"Tree_buffer capacity"
                                    )
                                admitted = True
                                while tb.used_bytes + size > tb_capacity:
                                    victim_addr = None
                                    while tb_heap:
                                        victim = heappop(tb_heap)
                                        cur = tb_resident_get(victim[2])
                                        if (
                                            cur is not None
                                            and cur[0] == victim[0]
                                            and cur[1] == victim[1]
                                        ):
                                            victim_addr = victim[2]
                                            break
                                    if victim_addr is None:
                                        break
                                    if victim[0] > norm:
                                        heappush(tb_heap, victim)
                                        tb.rejected_inserts += 1
                                        admitted = False
                                        break
                                    tb.used_bytes -= tb_resident.pop(
                                        victim_addr
                                    )[2]
                                    tb.evictions += 1
                                if admitted:
                                    tb.used_bytes += size
                                    seq = tb._seq + 1
                                    tb._seq = seq
                                    tb_resident[addr] = (norm, seq, size)
                                    heappush(tb_heap, (norm, seq, addr))
                                hit = False
                        if hit:
                            fast_cycles = 0
                        else:
                            offchip_lines += lines
                            fast_cycles = tree_miss_stall
                        visited_append(node.node_id)
                        bytes_fetched += lines * CACHE_LINE_BYTES
                        bytes_used += used
                        if kind is write_kind:
                            node.value = op.value
                            # row_of inlined: one probe per fast-path
                            # write makes the call overhead measurable.
                            a2r = pool.addr_to_row
                            aidx = (addr - addr_base) >> 4
                            if aidx < a2r.shape[0]:
                                vrow = a2r[aidx]
                                if vrow >= 0:
                                    pool.leaf_value[vrow] = op.value
                            parent_address = entry.parent_address
                            parent = (
                                node_at(parent_address)
                                if parent_address is not None
                                else None
                            )
                            if parent is not None:
                                if type(parent) is Leaf:
                                    p_used = len(parent.key) + 8
                                    p_size = 16 + p_used
                                    p_span = p_size
                                else:
                                    p_used = len(parent.prefix) + 9
                                    p_size = parent.size_bytes
                                    p_span = (
                                        p_size
                                        if p_size < 16 + p_used
                                        else 16 + p_used
                                    )
                                p_lines = -(-p_span // CACHE_LINE_BYTES)
                                addr = parent.address
                                if not value_aware:
                                    hit = fetch_node(addr, p_size, fvalue)
                                else:
                                    tb_entry = tb_resident_get(addr)
                                    if tb_entry is not None:
                                        tb.hits += 1
                                        seq = tb._seq + 1
                                        tb._seq = seq
                                        tb_resident[addr] = (
                                            norm, seq, tb_entry[2],
                                        )
                                        heappush(tb_heap, (norm, seq, addr))
                                        hit = True
                                    else:
                                        tb.misses += 1
                                        if p_size > tb_capacity:
                                            raise ConfigError(
                                                f"node of {p_size} B exceeds"
                                                f" Tree_buffer capacity"
                                            )
                                        admitted = True
                                        while (
                                            tb.used_bytes + p_size
                                            > tb_capacity
                                        ):
                                            victim_addr = None
                                            while tb_heap:
                                                victim = heappop(tb_heap)
                                                cur = tb_resident_get(
                                                    victim[2]
                                                )
                                                if (
                                                    cur is not None
                                                    and cur[0] == victim[0]
                                                    and cur[1] == victim[1]
                                                ):
                                                    victim_addr = victim[2]
                                                    break
                                            if victim_addr is None:
                                                break
                                            if victim[0] > norm:
                                                heappush(tb_heap, victim)
                                                tb.rejected_inserts += 1
                                                admitted = False
                                                break
                                            tb.used_bytes -= tb_resident.pop(
                                                victim_addr
                                            )[2]
                                            tb.evictions += 1
                                        if admitted:
                                            tb.used_bytes += p_size
                                            seq = tb._seq + 1
                                            tb._seq = seq
                                            tb_resident[addr] = (
                                                norm, seq, p_size,
                                            )
                                            heappush(
                                                tb_heap, (norm, seq, addr)
                                            )
                                        hit = False
                                if not hit:
                                    offchip_lines += p_lines
                                    fast_cycles += tree_miss_stall
                                visited_append(parent.node_id)
                                bytes_fetched += p_lines * CACHE_LINE_BYTES
                                bytes_used += p_used
                        shortcut_hits += 1
                        if fast_cycles < PIPELINE_II:
                            fast_cycles = PIPELINE_II
                        cycles = stall_cycles + fast_cycles
                        if cycles < PIPELINE_II:
                            cycles = PIPELINE_II
                        served = True
                    else:
                        if entry.corrupted:
                            stall_cycles += self._corrupted_retry(outcome)
                        stale_shortcuts += 1
                        shortcuts.note_stale(key)

            if not served:
                traversals += 1
                shortcut_misses += 1
                # Prediction usable?  READs always ride the kernel; a
                # WRITE only when the key exists (pure value update); a
                # DELETE only when it misses (no mutation).  Everything
                # else — unkerneled ops and any op whose path crossed a
                # dirty row — falls back to the live scalar walk.
                lane = lane_get(key, -1)
                use_pred = lane >= 0 and preds_ok and (
                    kind is read_kind
                    or (kind is write_kind and k_hit[lane])
                    or (kind is delete_kind and not k_hit[lane])
                )
                if use_pred:
                    seg_at = k_start[lane]
                    seg_end = seg_at + k_len[lane]
                    if dirty:
                        for t in range(seg_at, seg_end):
                            spec = dirty_get(k_addr[t])
                            if spec is not None and (
                                spec is True or k_byte[t] in spec
                            ):
                                use_pred = False
                                break
                if use_pred:
                    for t in range(seg_at, seg_end):
                        addr = k_addr[t]
                        if not value_aware:
                            hit = fetch_node(addr, k_size[t], fvalue)
                        else:
                            tb_entry = tb_resident_get(addr)
                            if tb_entry is not None:
                                tb.hits += 1
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, tb_entry[2])
                                heappush(tb_heap, (norm, seq, addr))
                                continue  # on-chip: no stall, no lines
                            t_size = k_size[t]
                            tb.misses += 1
                            if t_size > tb_capacity:
                                raise ConfigError(
                                    f"node of {t_size} B exceeds "
                                    f"Tree_buffer capacity"
                                )
                            admitted = True
                            while tb.used_bytes + t_size > tb_capacity:
                                victim_addr = None
                                while tb_heap:
                                    victim = heappop(tb_heap)
                                    cur = tb_resident_get(victim[2])
                                    if (
                                        cur is not None
                                        and cur[0] == victim[0]
                                        and cur[1] == victim[1]
                                    ):
                                        victim_addr = victim[2]
                                        break
                                if victim_addr is None:
                                    break
                                if victim[0] > norm:
                                    heappush(tb_heap, victim)
                                    tb.rejected_inserts += 1
                                    admitted = False
                                    break
                                tb.used_bytes -= tb_resident.pop(
                                    victim_addr
                                )[2]
                                tb.evictions += 1
                            if admitted:
                                tb.used_bytes += t_size
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, t_size)
                                heappush(tb_heap, (norm, seq, addr))
                            hit = False
                        if not hit:
                            offchip_lines += k_lines[t]
                            stall_cycles += tree_miss_stall
                    visited_extend(k_nid[seg_at:seg_end])
                    bytes_fetched += k_bytes[lane]
                    bytes_used += k_used[lane]
                    partial_matches += k_pm[lane]
                    if k_hit[lane]:
                        if kind is write_kind:
                            node_at(k_taddr[lane]).value = op.value
                            pool.leaf_value[k_term[lane]] = op.value
                        if shortcuts is not None:
                            paddr = k_paddr[lane]
                            shortcuts.generate(
                                key,
                                k_taddr[lane],
                                paddr if paddr >= 0 else None,
                            )
                            shortcuts_generated += 1
                else:
                    record = apply_operation(tree, op)
                    for t_nid, addr, t_size, t_used, t_kind in (
                        record.touches
                    ):
                        fetch = (
                            t_size if t_size < 16 + t_used else 16 + t_used
                        )
                        lines = -(-fetch // CACHE_LINE_BYTES)
                        if not value_aware:
                            hit = fetch_node(addr, t_size, fvalue)
                        else:
                            tb_entry = tb_resident_get(addr)
                            if tb_entry is not None:
                                tb.hits += 1
                                seq = tb._seq + 1
                                tb._seq = seq
                                tb_resident[addr] = (norm, seq, tb_entry[2])
                                heappush(tb_heap, (norm, seq, addr))
                                hit = True
                            else:
                                tb.misses += 1
                                if t_size > tb_capacity:
                                    raise ConfigError(
                                        f"node of {t_size} B exceeds "
                                        f"Tree_buffer capacity"
                                    )
                                admitted = True
                                while tb.used_bytes + t_size > tb_capacity:
                                    victim_addr = None
                                    while tb_heap:
                                        victim = heappop(tb_heap)
                                        cur = tb_resident_get(victim[2])
                                        if (
                                            cur is not None
                                            and cur[0] == victim[0]
                                            and cur[1] == victim[1]
                                        ):
                                            victim_addr = victim[2]
                                            break
                                    if victim_addr is None:
                                        break
                                    if victim[0] > norm:
                                        heappush(tb_heap, victim)
                                        tb.rejected_inserts += 1
                                        admitted = False
                                        break
                                    tb.used_bytes -= tb_resident.pop(
                                        victim_addr
                                    )[2]
                                    tb.evictions += 1
                                if admitted:
                                    tb.used_bytes += t_size
                                    seq = tb._seq + 1
                                    tb._seq = seq
                                    tb_resident[addr] = (norm, seq, t_size)
                                    heappush(tb_heap, (norm, seq, addr))
                                hit = False
                        if not hit:
                            offchip_lines += lines
                            stall_cycles += tree_miss_stall
                        visited_append(t_nid)
                        bytes_fetched += lines * CACHE_LINE_BYTES
                        bytes_used += t_used
                        if t_kind != "Leaf":
                            partial_matches += 1

                    if record.structure_modified:
                        stall_cycles += structure_cycles
                        structure_mods += 1
                        self._invalidate_dead_nodes(record)
                        if modifies_shared_ancestor(
                            record, self.shared_depth_bytes
                        ):
                            sync_targets.append(record.target_node_id or -1)
                        pool.refresh_after(record, dirty)
                        if kernel_on_empty:
                            preds_ok = False
                    elif record.outcome == "updated":
                        vrow = row_of(record.target_address)
                        if vrow >= 0:
                            pool.leaf_value[vrow] = op.value

                    if shortcuts is not None:
                        record_outcome = record.outcome
                        if (
                            record_outcome in ("hit", "updated")
                            and record.target_address is not None
                        ):
                            shortcuts.generate(
                                key,
                                record.target_address,
                                record.parent_address,
                            )
                            shortcuts_generated += 1
                        elif record_outcome == "deleted":
                            shortcuts.drop(key)

                cycles = (
                    stall_cycles if stall_cycles > PIPELINE_II else PIPELINE_II
                )

            if slow:
                cycles = ceil(cycles * slowdown)
            clock += cycles
            completions_append(clock)

        outcome.op_ids = [op.op_id for op in ops]
        if shortcuts is not None:
            sc_buf.hits += sc_buf_hits
            sc_buf.misses += sc_buf_misses
        outcome.n_ops = n
        outcome.cycles = clock
        outcome.nodes_visited = len(visited_ids)
        outcome.bytes_fetched = bytes_fetched
        outcome.bytes_used = bytes_used
        outcome.offchip_lines = offchip_lines
        outcome.partial_key_matches = partial_matches
        outcome.shortcut_hits = shortcut_hits
        outcome.shortcut_misses = shortcut_misses
        outcome.stale_shortcuts = stale_shortcuts
        outcome.traversals = traversals
        outcome.visited_ids = visited_ids
        self.buckets_processed += 1
        self.ops_processed += n
        self.busy_cycles += clock
        self.shortcut_hits_total += shortcut_hits
        self.shortcut_misses_total += shortcut_misses
        self.shortcut_buffer_hits_total += sc_buf_hits
        self.shortcut_buffer_misses_total += sc_buf_misses
        self.stale_shortcuts_total += stale_shortcuts
        self.corrupted_hits_total += outcome.corrupted_shortcut_hits
        self.traversals_total += traversals
        self.nodes_visited_total += outcome.nodes_visited
        self.offchip_lines_total += offchip_lines
        self.structure_mods_total += structure_mods
        self.shortcuts_generated_total += shortcuts_generated
        self.sync_ops_total += len(sync_targets)
        return outcome

    # ------------------------------------------------------------------

    def _report_occupancy(self, registry: "MetricsRegistry") -> None:
        """Per-level kernel occupancy: how many lanes were still in
        flight at each tree level, summed over every bucket."""
        sid = self.sou_id
        counter = registry.counter
        total = 0
        for level in sorted(self.level_occupancy):
            lanes = self.level_occupancy[level]
            counter(f"sou.{sid}.level_occupancy.{level}", lanes)
            total += lanes
        counter(f"sou.{sid}.level_occupancy.total", total)
