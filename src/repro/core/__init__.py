"""DCART: the data-centric ART accelerator (paper §III).

This package models the accelerator of Fig. 4/5 at cycle-approximate
fidelity:

* :mod:`config`        — Table I parameters (1 PCU, 16 SOUs, buffer sizes);
* :mod:`prefixing`     — the 8-bit prefix extraction the PCU buckets on;
* :mod:`bucket_table`  — the 16 off-chip Bucket_Tables + Bucket_buffer;
* :mod:`shortcut_table`— the Shortcut_Table hash map + Shortcut_buffer;
* :mod:`tree_buffer`   — the value-aware Tree_buffer policy (§III-E);
* :mod:`lru_buffer`    — the LRU on-chip buffers;
* :mod:`pcu`           — the 3-stage combining pipeline (§III-B);
* :mod:`dispatcher`    — bucket→SOU assignment + node-value estimation;
* :mod:`sou`           — the 4-stage shortcut-based operating unit (§III-C);
* :mod:`batching`      — PCU/SOU overlap across batches (§III-D, Fig. 6);
* :mod:`accelerator`   — the top-level :class:`DcartAccelerator` engine.
"""

from repro.core.config import DCARTConfig
from repro.core.prefixing import PrefixExtractor
from repro.core.shortcut_table import ShortcutEntry, ShortcutTable
from repro.core.tree_buffer import ValueAwareTreeBuffer
from repro.core.lru_buffer import LruBuffer
from repro.core.bucket_table import BucketTables
from repro.core.accelerator import DcartAccelerator

__all__ = [
    "BucketTables",
    "DCARTConfig",
    "DcartAccelerator",
    "LruBuffer",
    "PrefixExtractor",
    "ShortcutEntry",
    "ShortcutTable",
    "ValueAwareTreeBuffer",
]
