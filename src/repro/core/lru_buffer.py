"""A capacity-bounded LRU on-chip buffer.

DCART manages every on-chip buffer except the Tree_buffer with LRU
(paper §III-E, citing [4]).  Entries are variable-sized (shortcut
entries, bucket records, queued operations); the buffer tracks byte
occupancy and evicts least-recently-used entries until a new one fits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.errors import ConfigError


class LruBuffer:
    """Byte-budgeted LRU map used for Scan/Bucket/Shortcut buffers."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigError(f"capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, int]" = OrderedDict()
        self.used_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def lookup(self, key: Hashable) -> bool:
        """Probe for ``key``; refreshes recency on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Hashable, size_bytes: int) -> int:
        """Insert (or refresh) an entry; returns the number of evictions."""
        if size_bytes <= 0:
            raise ConfigError(f"entry size must be positive: {size_bytes}")
        if size_bytes > self.capacity_bytes:
            raise ConfigError(
                f"entry of {size_bytes} B exceeds buffer capacity "
                f"{self.capacity_bytes} B"
            )
        evicted = 0
        if key in self._entries:
            self.used_bytes -= self._entries.pop(key)
        while self.used_bytes + size_bytes > self.capacity_bytes:
            _, old_size = self._entries.popitem(last=False)
            self.used_bytes -= old_size
            self.evictions += 1
            evicted += 1
        self._entries[key] = size_bytes
        self.used_bytes += size_bytes
        return evicted

    def keys(self) -> list:
        """Resident keys, least recently used first."""
        return list(self._entries.keys())

    def remove(self, key: Hashable) -> bool:
        """Drop an entry if present (invalidation path)."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self.used_bytes -= size
        return True

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total
