"""Prefix extraction for operation combining (paper §III-B).

The PCU assigns operations to disjoint buckets by an 8-bit prefix of the
key — "the first 8 bits of the key are used as the specified prefix by
default".  That default is degenerate for key families whose leading
byte is constant (e.g. dense 8-byte integers below 2³², whose first four
bytes are all zero): every operation would land in one bucket and the 16
SOUs would serialise behind it.

Real deployments configure the prefix position for the key family, so
:meth:`PrefixExtractor.calibrate` picks the *first key byte with useful
entropy* from a sample — for IPGEO/DICT/EA that is byte 0 (the paper's
default), for the dense synthetic integers it is the first byte that
actually varies.  The choice is reported in the run's metadata so no
number silently depends on it.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigError

#: A byte position qualifies if its most common value covers at most this
#: fraction of the sample (i.e. it actually discriminates keys).
MAX_DOMINANT_SHARE = 0.9


class PrefixExtractor:
    """Maps a key to its 8-bit prefix and its bucket."""

    def __init__(self, byte_offset: int = 0, n_buckets: int = 16):
        if byte_offset < 0:
            raise ConfigError(f"byte_offset must be >= 0: {byte_offset}")
        if n_buckets <= 0 or n_buckets > 256:
            raise ConfigError(f"n_buckets must be in 1..256: {n_buckets}")
        self.byte_offset = byte_offset
        self.n_buckets = n_buckets

    def prefix(self, key: bytes) -> int:
        """The key's 8-bit combining prefix."""
        if self.byte_offset < len(key):
            return key[self.byte_offset]
        return 0

    def bucket(self, key: bytes) -> int:
        """The bucket (= Bucket_Table index) the PCU assigns the key to."""
        return self.prefix(key) % self.n_buckets

    def buckets_for(self, keys: Sequence[bytes]) -> np.ndarray:
        """Vectorised :meth:`bucket` over a whole batch of keys.

        Concatenates the batch once (C-speed) and gathers the prefix
        byte of every key with numpy indexing — the hardware analogue is
        the PCU's ``Get_Prefix`` stage reading one byte per scanned
        operation.  Keys shorter than the offset get prefix 0, exactly
        like the scalar path.
        """
        n = len(keys)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        offset = self.byte_offset
        data = np.frombuffer(b"".join(keys), dtype=np.uint8)
        lengths = np.fromiter(map(len, keys), dtype=np.int64, count=n)
        starts = np.empty(n, dtype=np.int64)
        starts[0] = 0
        np.cumsum(lengths[:-1], out=starts[1:])
        prefixes = np.zeros(n, dtype=np.int64)
        valid = lengths > offset
        prefixes[valid] = data[starts[valid] + offset]
        return prefixes % self.n_buckets

    @classmethod
    def calibrate(
        cls,
        sample_keys: Sequence[bytes],
        n_buckets: int = 16,
        max_offset: int = 8,
    ) -> "PrefixExtractor":
        """Choose the first byte position that discriminates the sample.

        Scans offsets left to right and returns the first whose most
        common byte value covers at most :data:`MAX_DOMINANT_SHARE` of
        the sample; falls back to the highest-entropy offset scanned.
        Left-to-right matters: an earlier discriminating byte keeps the
        bucket partition aligned with subtree boundaries (all keys of a
        bucket share the bytes before the offset).
        """
        if not sample_keys:
            raise ConfigError("cannot calibrate a prefix from an empty sample")
        best_offset = 0
        best_distinct = -1
        limit = min(max_offset, max(len(k) for k in sample_keys))
        for offset in range(limit):
            values = Counter(
                key[offset] for key in sample_keys if offset < len(key)
            )
            if not values:
                continue
            total = sum(values.values())
            dominant = values.most_common(1)[0][1] / total
            if dominant <= MAX_DOMINANT_SHARE:
                return cls(byte_offset=offset, n_buckets=n_buckets)
            if len(values) > best_distinct:
                best_distinct = len(values)
                best_offset = offset
        return cls(byte_offset=best_offset, n_buckets=n_buckets)

    def bucket_histogram(self, keys: Iterable[bytes]) -> Counter:
        """Bucket occupancy for a key stream (load-balance diagnostics)."""
        return Counter(self.bucket(key) for key in keys)

    def __repr__(self) -> str:
        return (
            f"PrefixExtractor(byte_offset={self.byte_offset}, "
            f"n_buckets={self.n_buckets})"
        )
