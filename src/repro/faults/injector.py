"""Replaying a :class:`FaultSchedule` against a live accelerator run.

The injector is the single point where the chaos harness touches the
hardware model: :class:`~repro.core.accelerator.DcartAccelerator` calls
:meth:`FaultInjector.start_batch` before combining each batch, queries
the slowdown/bandwidth multipliers while billing it, and hands the batch
total to the :class:`Watchdog` afterwards.  All mutation targets
(dispatcher, shortcut table, tree buffer) are passed in per batch, so
the injector owns no hardware state and one schedule can be replayed
against any configuration.

Determinism: every stochastic choice (which shortcut rows to corrupt,
which resident nodes a storm evicts) is drawn from a
``Random(schedule.seed ^ batch)`` stream over *sorted* candidate sets,
so the same seed against the same workload perturbs the same state.
"""

from __future__ import annotations

from random import Random
from typing import Dict, List, Optional

from repro.errors import ConfigError, WatchdogTimeout
from repro.faults.schedule import (
    BufferStorm,
    CrashFault,
    FaultSchedule,
    ShortcutCorruption,
    SouFailStop,
)
from repro.log import get_logger

LOG = get_logger("faults")


class Watchdog:
    """Aborts a run whose batch blows through its cycle budget.

    The model is deterministic, so a literal hang cannot happen — what
    the watchdog guards against is *pathological degradation*: a fault
    combination that makes a batch orders of magnitude slower than the
    healthy machine would ever be.  The budget is per batch,
    ``max_cycles_per_op x ops``, mirroring a hardware watchdog counter
    armed at batch start.
    """

    def __init__(
        self,
        max_cycles_per_op: int = 100_000,
        floor_cycles: int = 1_000_000,
    ):
        if max_cycles_per_op <= 0:
            raise ConfigError(
                f"max_cycles_per_op must be positive: {max_cycles_per_op}"
            )
        self.max_cycles_per_op = max_cycles_per_op
        self.floor_cycles = floor_cycles
        self.fires = 0

    def budget_for(self, n_ops: int) -> int:
        return max(self.floor_cycles, n_ops * self.max_cycles_per_op)

    def check(
        self,
        batch_index: int,
        n_ops: int,
        batch_cycles: int,
        per_sou_cycles: Dict[int, int],
        failed_sous: List[int],
    ) -> None:
        """Raise :class:`WatchdogTimeout` if the batch exceeded budget."""
        budget = self.budget_for(n_ops)
        if batch_cycles <= budget:
            return
        self.fires += 1
        diagnostics = {
            "batch_index": batch_index,
            "batch_cycles": batch_cycles,
            "budget_cycles": budget,
            "n_ops": n_ops,
            "per_sou_cycles": {str(k): v for k, v in sorted(per_sou_cycles.items())},
            "failed_sous": sorted(failed_sous),
        }
        LOG.error(
            "watchdog fired: batch %d took %d cycles (budget %d)",
            batch_index, batch_cycles, budget,
        )
        raise WatchdogTimeout(
            f"batch {batch_index} exceeded its cycle budget "
            f"({batch_cycles} > {budget})",
            diagnostics,
        )


class FaultInjector:
    """Stateful replay of one :class:`FaultSchedule` over one run."""

    def __init__(
        self,
        schedule: FaultSchedule,
        watchdog: Optional[Watchdog] = None,
        shortcut_retry_limit: int = 2,
    ):
        if shortcut_retry_limit < 0:
            raise ConfigError(
                f"shortcut_retry_limit must be >= 0: {shortcut_retry_limit}"
            )
        self.schedule = schedule
        self.watchdog = watchdog if watchdog is not None else Watchdog()
        self.shortcut_retry_limit = shortcut_retry_limit
        self.reset()

    def reset(self) -> None:
        """Rewind for a fresh run (schedules are replayable)."""
        self.current_batch = -1
        self.failed_sous: set = set()
        self.events_applied = 0
        self.shortcut_corruptions = 0
        self.storm_invalidations = 0
        self.corrupted_hits = 0
        self.retry_cycles = 0
        self.crashes_armed = 0
        self.crashes_skipped = 0

    # ------------------------------------------------------------------
    # per-batch hook (called by the accelerator before combining)
    # ------------------------------------------------------------------

    def start_batch(
        self, batch_index, dispatcher, shortcuts, tree_buffer, durability=None
    ) -> None:
        """Apply every point event scheduled for ``batch_index``.

        ``durability`` is the run's optional
        :class:`~repro.durability.DurabilityManager`; a
        :class:`CrashFault` arms its kill point there (the actual
        :class:`~repro.errors.SimulatedCrash` is raised by the manager
        at the exact protocol step, not here).
        """
        self.current_batch = batch_index
        for event in self.schedule.point_events_at(batch_index):
            self.events_applied += 1
            LOG.info("injecting fault: %s", event.describe())
            if isinstance(event, SouFailStop):
                self.failed_sous.add(event.sou_id)
                dispatcher.fail(event.sou_id)
            elif isinstance(event, ShortcutCorruption):
                self._corrupt_shortcuts(batch_index, event, shortcuts)
            elif isinstance(event, BufferStorm):
                self._storm(batch_index, event, tree_buffer)
            elif isinstance(event, CrashFault):
                if durability is None:
                    LOG.warning(
                        "crash fault at batch %d ignored: run has no "
                        "DurabilityManager", batch_index,
                    )
                    self.crashes_skipped += 1
                else:
                    durability.arm_crash(event.point, event.detail)
                    self.crashes_armed += 1

    def _corrupt_shortcuts(self, batch_index, event, shortcuts) -> None:
        if shortcuts is None or len(shortcuts) == 0:
            return
        rng = Random(self.schedule.seed ^ (batch_index + 1))
        keys = sorted(shortcuts.entry_keys())
        victims = rng.sample(keys, min(event.n_entries, len(keys)))
        for key in victims:
            shortcuts.corrupt(key)
        self.shortcut_corruptions += len(victims)

    def _storm(self, batch_index, event, tree_buffer) -> None:
        resident = sorted(tree_buffer.resident_addresses())
        if not resident:
            return
        rng = Random(self.schedule.seed ^ (batch_index + 1) ^ 0x570B)
        count = max(1, int(len(resident) * event.fraction))
        for address in rng.sample(resident, count):
            tree_buffer.invalidate(address)
        self.storm_invalidations += count

    # ------------------------------------------------------------------
    # queries billed by the timing model
    # ------------------------------------------------------------------

    def sou_failed(self, sou_id: int) -> bool:
        return sou_id in self.failed_sous

    def slowdown_factor(self, sou_id: int) -> float:
        """Slowdown multiplier on ``sou_id`` for the current batch."""
        return self.schedule.slowdown_factor(self.current_batch, sou_id)

    def bandwidth_factor(self) -> float:
        """HBM bandwidth multiplier for the current batch."""
        return self.schedule.bandwidth_factor(self.current_batch)

    def note_corrupted_hit(self, retry_cycles: int) -> None:
        """A corrupted shortcut survived validation retries (SOU hook)."""
        self.corrupted_hits += 1
        self.retry_cycles += retry_cycles

    def end_batch(
        self,
        batch_index: int,
        n_ops: int,
        batch_cycles: int,
        per_sou_cycles: Dict[int, int],
    ) -> None:
        """Arm the watchdog against the finished batch's cycle count."""
        self.watchdog.check(
            batch_index, n_ops, batch_cycles, per_sou_cycles,
            sorted(self.failed_sous),
        )

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Fault telemetry for ``RunResult.extra``."""
        return {
            "fault_events_applied": self.events_applied,
            "failed_sous": sorted(self.failed_sous),
            "shortcut_corruptions": self.shortcut_corruptions,
            "corrupted_shortcut_hits": self.corrupted_hits,
            "corrupted_retry_cycles": self.retry_cycles,
            "storm_invalidations": self.storm_invalidations,
            "crashes_armed": self.crashes_armed,
            "fault_schedule_signature": self.schedule.signature(),
        }
