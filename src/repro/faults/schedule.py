"""Deterministic fault plans for the chaos harness.

A schedule is a frozen, sorted tuple of fault events pinned to batch
indices.  Everything is a pure function of the seed and the generator
parameters — two schedules built with the same arguments are equal and
share a byte-identical :meth:`FaultSchedule.signature`, which is what
makes a chaos run reproducible end to end (fuzzbench-style: the seed
*is* the scenario).

Five event kinds model the failure modes a deployed accelerator sees:

* :class:`SouFailStop`      — an SOU dies at batch *k* and never returns;
* :class:`SouSlowdown`      — an SOU runs ``factor``× slower over a
  batch window (thermal throttling, a flaky HBM pseudo-channel);
* :class:`ShortcutCorruption` — ``n_entries`` Shortcut_Table rows get
  dangling target addresses at batch *k* (bit flips in off-chip DRAM);
* :class:`BufferStorm`      — a fraction of the Tree_buffer is
  invalidated at batch *k* (ECC scrub, partial reconfiguration);
* :class:`HbmThrottle`      — HBM bandwidth drops to ``factor`` of
  nominal over a batch window (shared-bus interference);
* :class:`CrashFault`       — the whole machine is killed at batch *k*
  at a specific step of the durability protocol (mid-WAL-append,
  pre-commit, torn commit, mid-checkpoint payload/manifest), so the
  crash–recover–validate loop can exercise every recovery path.

Two further kinds target the sharded cluster layer
(:mod:`repro.cluster`) rather than a single machine:

* :class:`ShardFailStop`    — a whole shard's primary dies at batch *k*
  (host crash, fabric partition); the coordinator's failure detector
  and replica failover have to absorb it;
* :class:`ReplicationLinkSlowdown` — a shard's primary→replica link
  runs ``factor``× slower over a batch window, growing replication lag
  and delaying heartbeats (congested or flapping fabric path).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from random import Random
from typing import Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError


def _check_batch(batch: int, what: str = "batch") -> None:
    if batch < 0:
        raise ConfigError(f"{what} must be >= 0: {batch}")


def _check_sou_id(sou_id: int) -> None:
    if sou_id < 0:
        raise ConfigError(f"sou_id must be >= 0: {sou_id}")


@dataclass(frozen=True)
class SouFailStop:
    """SOU ``sou_id`` fail-stops at the start of batch ``batch``."""

    batch: int
    sou_id: int

    def __post_init__(self):
        _check_batch(self.batch)
        _check_sou_id(self.sou_id)

    def describe(self) -> str:
        return f"batch {self.batch}: SOU {self.sou_id} fail-stop"


@dataclass(frozen=True)
class SouSlowdown:
    """SOU ``sou_id`` runs ``factor``x slower on batches [start, end]."""

    start_batch: int
    end_batch: int
    sou_id: int
    factor: float

    def __post_init__(self):
        _check_batch(self.start_batch, "start_batch")
        _check_sou_id(self.sou_id)
        if self.factor < 1.0:
            raise ConfigError(f"slowdown factor must be >= 1: {self.factor}")
        if self.end_batch < self.start_batch:
            raise ConfigError(
                f"slowdown window inverted: [{self.start_batch}, {self.end_batch}]"
            )

    def describe(self) -> str:
        return (
            f"batches {self.start_batch}-{self.end_batch}: "
            f"SOU {self.sou_id} slowed {self.factor:g}x"
        )


@dataclass(frozen=True)
class ShortcutCorruption:
    """``n_entries`` shortcut rows corrupted at the start of ``batch``."""

    batch: int
    n_entries: int

    def __post_init__(self):
        _check_batch(self.batch)
        if self.n_entries <= 0:
            raise ConfigError(f"n_entries must be positive: {self.n_entries}")

    def describe(self) -> str:
        return f"batch {self.batch}: {self.n_entries} shortcut entries corrupted"


@dataclass(frozen=True)
class BufferStorm:
    """A ``fraction`` of resident Tree_buffer nodes invalidated at ``batch``."""

    batch: int
    fraction: float

    def __post_init__(self):
        _check_batch(self.batch)
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigError(f"storm fraction must be in (0, 1]: {self.fraction}")

    def describe(self) -> str:
        return (
            f"batch {self.batch}: Tree_buffer invalidation storm "
            f"({100 * self.fraction:.0f} %)"
        )


@dataclass(frozen=True)
class HbmThrottle:
    """HBM bandwidth multiplied by ``factor`` on batches [start, end].

    ``factor == 0.0`` is a full channel blackout: the accelerator prices
    off-chip traffic at ``FpgaCosts.hbm_blackout_cycles_per_line``
    instead of dividing by the (zero) effective bandwidth.
    """

    start_batch: int
    end_batch: int
    factor: float

    def __post_init__(self):
        _check_batch(self.start_batch, "start_batch")
        if not 0.0 <= self.factor <= 1.0:
            raise ConfigError(f"throttle factor must be in [0, 1]: {self.factor}")
        if self.end_batch < self.start_batch:
            raise ConfigError(
                f"throttle window inverted: [{self.start_batch}, {self.end_batch}]"
            )

    def describe(self) -> str:
        return (
            f"batches {self.start_batch}-{self.end_batch}: "
            f"HBM throttled to {100 * self.factor:.0f} %"
        )


#: Durability-protocol kill points a :class:`CrashFault` may name (the
#: canonical list lives in :mod:`repro.durability.manager`; mirrored
#: here so building a schedule does not import the durability package).
CRASH_POINTS = (
    "wal-mid-append",
    "wal-pre-commit",
    "wal-torn-commit",
    "ckpt-payload",
    "ckpt-manifest",
)


@dataclass(frozen=True)
class CrashFault:
    """Kill the machine during ``batch`` at durability step ``point``.

    ``detail`` seeds where exactly the torn write lands (which op index
    the append dies on, how many bytes of the torn record survive).
    Requires the run to have a :class:`DurabilityManager` attached —
    without one there is nothing to tear, and the injector logs and
    skips the event.
    """

    batch: int
    point: str
    detail: int = 0

    def __post_init__(self):
        _check_batch(self.batch)
        if self.point not in CRASH_POINTS:
            raise ConfigError(
                f"unknown crash point {self.point!r}; one of {CRASH_POINTS}"
            )
        if self.detail < 0:
            raise ConfigError(f"crash detail must be >= 0: {self.detail}")

    def describe(self) -> str:
        return f"batch {self.batch}: crash at {self.point}"


@dataclass(frozen=True)
class ShardFailStop:
    """Shard ``shard_id``'s primary fail-stops at the start of ``batch``.

    A cluster-level event: the whole DCART instance behind one shard
    stops responding (host crash, power loss, fabric partition).  Its
    in-flight batch is lost from the primary — the coordinator queues
    those ops as hinted handoff — and its heartbeats stop, so the
    failure detector walks alive → suspect → dead before the replica is
    promoted.  Ignored (with a warning) by single-machine runs.
    """

    batch: int
    shard_id: int

    def __post_init__(self):
        _check_batch(self.batch)
        if self.shard_id < 0:
            raise ConfigError(f"shard_id must be >= 0: {self.shard_id}")

    def describe(self) -> str:
        return f"batch {self.batch}: shard {self.shard_id} fail-stop"


@dataclass(frozen=True)
class ReplicationLinkSlowdown:
    """Shard ``shard_id``'s replication link runs ``factor``x slower.

    Over batches ``[start_batch, end_batch]`` the primary→replica WAL
    stream (and the heartbeats sharing the path) is delayed by
    ``factor``: replication lag grows by the same multiple and the
    failure detector may walk the shard into SUSPECT before the window
    ends — a slow fabric path must *not* trigger a spurious failover.
    """

    start_batch: int
    end_batch: int
    shard_id: int
    factor: float

    def __post_init__(self):
        _check_batch(self.start_batch, "start_batch")
        if self.shard_id < 0:
            raise ConfigError(f"shard_id must be >= 0: {self.shard_id}")
        if self.factor < 1.0:
            raise ConfigError(
                f"replication slowdown factor must be >= 1: {self.factor}"
            )
        if self.end_batch < self.start_batch:
            raise ConfigError(
                f"slowdown window inverted: [{self.start_batch}, {self.end_batch}]"
            )

    def describe(self) -> str:
        return (
            f"batches {self.start_batch}-{self.end_batch}: "
            f"shard {self.shard_id} replication link slowed {self.factor:g}x"
        )


FaultEvent = Union[
    SouFailStop, SouSlowdown, ShortcutCorruption, BufferStorm, HbmThrottle,
    CrashFault, ShardFailStop, ReplicationLinkSlowdown,
]

#: Event kinds scoped to the cluster coordinator, never the per-machine
#: injector (single-machine runs reject them via ``validate_shards(0)``).
CLUSTER_EVENTS = (ShardFailStop, ReplicationLinkSlowdown)


#: Stable ordering for signature/replay: (first batch, kind name, repr).
def _event_key(event: FaultEvent) -> Tuple[int, str, str]:
    first = getattr(event, "batch", None)
    if first is None:
        first = event.start_batch
    return (first, type(event).__name__, repr(event))


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, immutable plan of fault events."""

    seed: int
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=_event_key))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # queries the injector replays per batch
    # ------------------------------------------------------------------

    def point_events_at(self, batch: int) -> List[FaultEvent]:
        """Fail-stops, corruptions, and storms due exactly at ``batch``.

        Machine-level events only: cluster-scope events (shard
        fail-stops) are the coordinator's to replay, not the per-machine
        injector's — see :meth:`shard_events_at`.
        """
        return [
            e
            for e in self.events
            if getattr(e, "batch", None) == batch
            and not isinstance(e, CLUSTER_EVENTS)
        ]

    def slowdown_factor(self, batch: int, sou_id: int) -> float:
        """Combined slowdown multiplier on ``sou_id`` during ``batch``."""
        factor = 1.0
        for event in self.events:
            if (
                isinstance(event, SouSlowdown)
                and event.sou_id == sou_id
                and event.start_batch <= batch <= event.end_batch
            ):
                factor *= event.factor
        return factor

    def bandwidth_factor(self, batch: int) -> float:
        """Combined HBM bandwidth multiplier during ``batch``.

        May legitimately reach 0.0 (full blackout); the accelerator
        prices that as a per-line stall rather than a division, so no
        epsilon clamp is applied here.
        """
        factor = 1.0
        for event in self.events:
            if (
                isinstance(event, HbmThrottle)
                and event.start_batch <= batch <= event.end_batch
            ):
                factor *= event.factor
        return factor

    # ------------------------------------------------------------------

    def _validate_targets(self, attr: str, n_units: int, what: str) -> None:
        """Shared upper-bound check behind the ``validate_*`` family.

        Upper-bound checking needs the machine (or cluster) width, so it
        cannot live in the event constructors; runs that pair a schedule
        with a concrete configuration call the public wrappers before
        arming anything, so out-of-range targets fail fast everywhere.
        """
        for event in self.events:
            target = getattr(event, attr, None)
            if target is not None and target >= n_units:
                have = (
                    f"only {n_units} {what}s" if n_units > 0 else f"no {what}s"
                )
                raise ConfigError(
                    f"fault event targets {what} {target}, but the run has "
                    f"{have}: {event.describe()}"
                )

    def validate_sous(self, n_sous: int) -> "FaultSchedule":
        """Reject events naming SOUs the target machine does not have.

        Returns ``self`` so it chains.
        """
        self._validate_targets("sou_id", n_sous, "SOU")
        return self

    def validate_shards(self, n_shards: int) -> "FaultSchedule":
        """Reject events naming shards the target cluster does not have.

        Single-machine runs call this with ``n_shards=0`` so a schedule
        carrying cluster-level events (:class:`ShardFailStop`,
        :class:`ReplicationLinkSlowdown`) is rejected up front instead
        of silently never firing.  Returns ``self`` so it chains.
        """
        self._validate_targets("shard_id", n_shards, "shard")
        return self

    def shard_events_at(self, batch: int) -> List["ShardFailStop"]:
        """Shard fail-stops due exactly at ``batch`` (coordinator hook)."""
        return [
            e
            for e in self.events
            if isinstance(e, ShardFailStop) and e.batch == batch
        ]

    def replication_factor(self, batch: int, shard_id: int) -> float:
        """Combined replication-link slowdown on ``shard_id`` at ``batch``."""
        factor = 1.0
        for event in self.events:
            if (
                isinstance(event, ReplicationLinkSlowdown)
                and event.shard_id == shard_id
                and event.start_batch <= batch <= event.end_batch
            ):
                factor *= event.factor
        return factor

    def signature(self) -> str:
        """Content hash of the plan — equal seeds give equal signatures."""
        canonical = f"seed={self.seed};" + ";".join(
            repr(e) for e in self.events
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        lines = [f"fault schedule (seed {self.seed}, {len(self.events)} events)"]
        lines.extend(f"  {event.describe()}" for event in self.events)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # generators
    # ------------------------------------------------------------------

    @classmethod
    def fail_sous(
        cls,
        n_failed: int,
        seed: int,
        n_sous: int = 16,
        at_batch: int = 0,
    ) -> "FaultSchedule":
        """Fail-stop ``n_failed`` distinct SOUs, chosen by the seed.

        The failed unit set is a deterministic sample of the seed, so
        ``--fail-sous 4 --seed 1`` always kills the same four units.
        """
        if not 0 <= n_failed < n_sous:
            raise ConfigError(
                f"n_failed must be in [0, n_sous): {n_failed} of {n_sous}"
            )
        victims = Random(seed).sample(range(n_sous), n_failed)
        return cls(
            seed=seed,
            events=tuple(SouFailStop(at_batch, sou) for sou in sorted(victims)),
        )

    @classmethod
    def fail_shards(
        cls,
        n_failed: int,
        seed: int,
        n_shards: int,
        at_batch: int = 0,
    ) -> "FaultSchedule":
        """Fail-stop ``n_failed`` distinct shard primaries, seed-chosen.

        The cluster counterpart of :meth:`fail_sous`: the victim set is
        a deterministic sample of the seed, so ``--fault shard-failstop
        --seed 1`` always kills the same shards at the same batch.
        """
        if not 0 <= n_failed <= n_shards:
            raise ConfigError(
                f"n_failed must be in [0, n_shards]: {n_failed} of {n_shards}"
            )
        victims = Random(seed).sample(range(n_shards), n_failed)
        return cls(
            seed=seed,
            events=tuple(
                ShardFailStop(at_batch, shard) for shard in sorted(victims)
            ),
        )

    @classmethod
    def crash_at(
        cls,
        seed: int,
        n_batches: int,
        point: Optional[str] = None,
        batch: Optional[int] = None,
    ) -> "FaultSchedule":
        """One seeded crash: point and batch drawn from the seed if omitted.

        The crash loop's generator — 50 seeds give 50 distinct,
        replayable kill points across the durability protocol.
        """
        if n_batches <= 0:
            raise ConfigError(f"n_batches must be positive: {n_batches}")
        rng = Random(seed)
        chosen_point = point if point is not None else rng.choice(CRASH_POINTS)
        chosen_batch = batch if batch is not None else rng.randrange(n_batches)
        return cls(
            seed=seed,
            events=(CrashFault(chosen_batch, chosen_point, rng.randrange(1024)),),
        )

    @classmethod
    def generate(
        cls,
        seed: int,
        n_sous: int = 16,
        n_batches: int = 8,
        n_fail_stops: int = 1,
        n_slowdowns: int = 1,
        n_corruptions: int = 1,
        n_storms: int = 1,
        n_throttles: int = 1,
    ) -> "FaultSchedule":
        """A mixed chaos scenario drawn deterministically from the seed."""
        if n_batches <= 0:
            raise ConfigError(f"n_batches must be positive: {n_batches}")
        if n_fail_stops >= n_sous:
            raise ConfigError(
                f"cannot fail-stop every SOU: {n_fail_stops} of {n_sous}"
            )
        rng = Random(seed)
        events: List[FaultEvent] = []
        victims = rng.sample(range(n_sous), min(n_fail_stops + n_slowdowns, n_sous))
        for sou in victims[:n_fail_stops]:
            events.append(SouFailStop(rng.randrange(n_batches), sou))
        for sou in victims[n_fail_stops:]:
            start = rng.randrange(n_batches)
            end = min(n_batches - 1, start + rng.randrange(1, 4))
            events.append(SouSlowdown(start, end, sou, rng.choice((2.0, 4.0, 8.0))))
        for _ in range(n_corruptions):
            events.append(
                ShortcutCorruption(rng.randrange(n_batches), rng.randrange(16, 256))
            )
        for _ in range(n_storms):
            events.append(
                BufferStorm(rng.randrange(n_batches), rng.choice((0.25, 0.5, 1.0)))
            )
        for _ in range(n_throttles):
            start = rng.randrange(n_batches)
            end = min(n_batches - 1, start + rng.randrange(1, 4))
            events.append(HbmThrottle(start, end, rng.choice((0.25, 0.5, 0.75))))
        return cls(seed=seed, events=tuple(events))
