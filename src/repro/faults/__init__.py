"""Fault injection and graceful degradation (the chaos harness).

A :class:`FaultSchedule` is a seeded, deterministic plan of hardware
faults — SOU fail-stops and slow-downs, Shortcut_Table corruption,
Tree_buffer invalidation storms, HBM throttling windows.  A
:class:`FaultInjector` replays the plan against a live
:class:`~repro.core.accelerator.DcartAccelerator` run, and the
accelerator's failover/retry/watchdog machinery has to keep the run
*functionally correct* (the invariant validator proves it) while the
timing model bills the degradation.
"""

from repro.faults.injector import FaultInjector, Watchdog
from repro.faults.schedule import (
    BufferStorm,
    CrashFault,
    FaultSchedule,
    HbmThrottle,
    ReplicationLinkSlowdown,
    ShardFailStop,
    ShortcutCorruption,
    SouFailStop,
    SouSlowdown,
)

__all__ = [
    "BufferStorm",
    "CrashFault",
    "FaultInjector",
    "FaultSchedule",
    "HbmThrottle",
    "ReplicationLinkSlowdown",
    "ShardFailStop",
    "ShortcutCorruption",
    "SouFailStop",
    "SouSlowdown",
    "Watchdog",
]
