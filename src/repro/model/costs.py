"""All calibrated cost constants, in one place.

Sources of each number:

* **Cited by the paper** — the >15× CAS slowdown on RAM-resident lines
  ([21] Schweizer et al.); partial key = 1 byte, pointer = 8 bytes,
  cache line = 64 bytes (§II-B).
* **Public datasheet / measured folklore** — DRAM ~90 ns random load,
  L2/LLC ~6-14 ns, Xeon 8468 = 2×48 cores, A100 = 108 SMs × 32-lane
  warps, U280 HBM ≈ 460 GB/s, DCART clock = 230 MHz (§IV-A).
* **Calibrated to the paper's ratios** — platform power draws.  The
  paper's energy meters are not reproducible, but energy = power × time,
  so power ratios follow from (Fig. 11 energy ratios) / (Fig. 9 speedup
  ratios): CPU/FPGA ≈ 2.6-3.4 and GPU/FPGA ≈ 3.4-4.0.  With the U280 at
  a typical 42 W that yields ~135 W measured CPU draw and ~165 W GPU
  draw, which is what the respective meters plausibly reported under
  this memory-bound load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


def _positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class CpuCosts:
    """Per-operation cost constants for the Xeon-host engines (ns)."""

    n_threads: int = 96                 # 2 x 48-core Xeon Platinum 8468
    window: int = 8192                  # operations outstanding at once
    node_fetch_cached_ns: float = 8.0   # LLC hit
    node_fetch_dram_ns: float = 90.0    # LLC miss -> DRAM
    key_match_ns: float = 1.2           # one partial-key compare + branch
    leaf_op_ns: float = 12.0            # read/update the value
    structure_op_ns: float = 60.0       # split/grow bookkeeping
    lock_uncontended_ns: float = 22.0   # atomic RMW on a cached line
    contention_penalty_ns: float = 380.0  # queueing + line ping-pong per waiter
    llc_bytes: int = 64 * 1024 * 1024   # modelled shared-LLC slice for the index
    dram_bandwidth_gb_s: float = 200.0

    def __post_init__(self) -> None:
        _positive(
            n_threads=self.n_threads,
            window=self.window,
            node_fetch_cached_ns=self.node_fetch_cached_ns,
            node_fetch_dram_ns=self.node_fetch_dram_ns,
            key_match_ns=self.key_match_ns,
            leaf_op_ns=self.leaf_op_ns,
            lock_uncontended_ns=self.lock_uncontended_ns,
            llc_bytes=self.llc_bytes,
            dram_bandwidth_gb_s=self.dram_bandwidth_gb_s,
        )


@dataclass(frozen=True)
class GpuCosts:
    """Cost constants for the CuART GPU engine (A100)."""

    n_sms: int = 108
    warp_width: int = 32
    concurrent_warps: int = 1024        # resident warps across the device
    window: int = 32768                 # one kernel batch
    kernel_launch_us: float = 8.0       # per-batch launch + sync overhead
    node_fetch_l2_ns: float = 35.0      # L2 hit
    node_fetch_hbm_ns: float = 350.0    # global-memory miss
    key_match_ns: float = 0.6           # SIMT compare
    leaf_op_ns: float = 6.0
    atomic_uncontended_ns: float = 30.0
    # A contended global-memory atomic round-trips HBM per retry.
    contention_penalty_ns: float = 850.0
    l2_bytes: int = 40 * 1024 * 1024
    hbm_bandwidth_gb_s: float = 1550.0
    divergence_factor: float = 1.35     # warp lockstep: pay the longest lane

    def __post_init__(self) -> None:
        _positive(
            n_sms=self.n_sms,
            warp_width=self.warp_width,
            concurrent_warps=self.concurrent_warps,
            window=self.window,
            node_fetch_hbm_ns=self.node_fetch_hbm_ns,
            divergence_factor=self.divergence_factor,
        )


@dataclass(frozen=True)
class FpgaCosts:
    """Cycle costs for the DCART accelerator at 230 MHz (paper §IV-A)."""

    clock_hz: float = 230e6
    # SOU pipeline stage costs (cycles)
    shortcut_lookup_cycles: int = 2      # hash probe in Shortcut_buffer
    shortcut_offchip_cycles: int = 28    # Shortcut_Table probe in HBM
    tree_buffer_hit_cycles: int = 2      # node fetch from Tree_buffer (BRAM)
    tree_offchip_cycles: int = 28        # node fetch from HBM (~120 ns)
    match_cycles: int = 1                # partial-key match (combinational+reg)
    trigger_cycles: int = 2              # apply read/write at the target
    structure_op_cycles: int = 12        # split/grow applied by the SOU
    generate_shortcut_cycles: int = 2    # append to Shortcut_buffer
    #: Outstanding HBM requests per SOU (non-blocking pipeline): an
    #: off-chip stall is amortised over this many in-flight fetches.
    memory_parallelism: int = 8
    # PCU pipeline: 1 op/cycle steady state (3 stages)
    pcu_cycles_per_op: float = 1.0
    pcu_pipeline_fill_cycles: int = 3
    bucket_flush_cycles_per_line: int = 4  # buffered Bucket_Table spill
    # cross-bucket structural sync (a global lock among SOUs)
    global_sync_cycles: int = 40
    hbm_bandwidth_gb_s: float = 460.0
    # fault handling (chaos harness): re-targeting a failed unit's
    # bucket, and the backoff base of a corrupted-shortcut retry.
    redispatch_cycles: int = 6
    shortcut_retry_base_cycles: int = 4
    #: Stall per off-chip cache line while the HBM channel is fully
    #: blacked out (chaos ``bandwidth_factor() == 0``): traffic waits on
    #: the channel's retry/arbitration interval instead of streaming, so
    #: each line bills a fixed stall rather than dividing by zero
    #: bandwidth.  ~2.2 us per line at 230 MHz.
    hbm_blackout_cycles_per_line: int = 512

    def __post_init__(self) -> None:
        _positive(
            clock_hz=self.clock_hz,
            shortcut_lookup_cycles=self.shortcut_lookup_cycles,
            tree_buffer_hit_cycles=self.tree_buffer_hit_cycles,
            tree_offchip_cycles=self.tree_offchip_cycles,
            trigger_cycles=self.trigger_cycles,
            memory_parallelism=self.memory_parallelism,
            hbm_blackout_cycles_per_line=self.hbm_blackout_cycles_per_line,
        )

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz


@dataclass(frozen=True)
class SoftwareCttCosts:
    """Extra per-operation runtime the software CTT (DCART-C) pays.

    §II-C Challenges: on a CPU, combining and shortcut maintenance are
    *instructions competing with the traversal itself*, and the bucketed
    execution limits parallelism to the bucket count.  These constants
    make DCART-C "only slightly outperform" the best baselines (Fig. 9).
    """

    combine_ns: float = 150.0           # hash + scattered bucket append (DRAM)
    shortcut_lookup_ns: float = 260.0   # chained hash probe: ~2 dependent misses
    shortcut_maintain_ns: float = 300.0 # allocate + link + write back an entry
    dispatch_ns: float = 20.0

    def __post_init__(self) -> None:
        _positive(
            combine_ns=self.combine_ns,
            shortcut_lookup_ns=self.shortcut_lookup_ns,
            shortcut_maintain_ns=self.shortcut_maintain_ns,
        )


@dataclass(frozen=True)
class DurabilityCosts:
    """Cost model for the durability subsystem (WAL + checkpoints).

    The accelerator's host pairs the FPGA with an NVMe-class log device
    (SafarDB-style: the index accelerator is only production-usable when
    its state survives power loss).  Appends stream at the device's
    sequential bandwidth; an fsync point — the COMMIT barrier of a batch,
    or a checkpoint's rename-into-place — pays the flash write-cache
    flush latency.  Checkpoints stream at a lower effective bandwidth
    because they compete with the log for the same device.
    """

    wal_bandwidth_gb_s: float = 3.2      # NVMe sequential append stream
    fsync_latency_us: float = 15.0       # write-cache flush per sync point
    checkpoint_bandwidth_gb_s: float = 1.8
    #: Fixed restart cost of one crash recovery (device re-open, manifest
    #: walk, checkpoint image load) — the serving-mode downtime floor.
    recovery_fixed_us: float = 500.0
    #: Per-op WAL replay cost during recovery: decode one record and
    #: re-apply it to the in-memory tree (DRAM-bound upsert).
    recovery_replay_op_us: float = 0.25

    def __post_init__(self) -> None:
        _positive(
            wal_bandwidth_gb_s=self.wal_bandwidth_gb_s,
            fsync_latency_us=self.fsync_latency_us,
            checkpoint_bandwidth_gb_s=self.checkpoint_bandwidth_gb_s,
            recovery_fixed_us=self.recovery_fixed_us,
            recovery_replay_op_us=self.recovery_replay_op_us,
        )

    def wal_seconds(self, n_bytes: int, n_fsyncs: int = 0) -> float:
        """Time to append ``n_bytes`` and cross ``n_fsyncs`` sync points."""
        return (
            n_bytes / (self.wal_bandwidth_gb_s * 1e9)
            + n_fsyncs * self.fsync_latency_us * 1e-6
        )

    def checkpoint_seconds(self, n_bytes: int) -> float:
        """Time to stream one checkpoint image plus its two sync points.

        Two fsyncs: one for the payload before rename, one for the
        manifest after — the write order crash consistency depends on.
        """
        return (
            n_bytes / (self.checkpoint_bandwidth_gb_s * 1e9)
            + 2 * self.fsync_latency_us * 1e-6
        )

    def recovery_seconds(self, ops_replayed: int) -> float:
        """Downtime of one crash recovery that replayed ``ops_replayed``.

        The serving simulator bills this as server unavailability between
        a :class:`~repro.errors.SimulatedCrash` and the first post-crash
        batch — the denominator of the measured recovery-time objective.
        """
        return (
            self.recovery_fixed_us * 1e-6
            + ops_replayed * self.recovery_replay_op_us * 1e-6
        )


@dataclass(frozen=True)
class ClusterCosts:
    """Cost model for the sharded multi-accelerator cluster.

    The cluster layer (``repro.cluster``) pairs N DCART instances behind
    a routing coordinator, with primary/replica pairs kept consistent by
    shipping the primary's CRC-framed WAL stream over a replication
    link.  Everything the coordinator bills — routing, replication
    shipping, heartbeat cadence, failover promotion, WAL-tail catch-up,
    hinted handoff, and bucket migration — prices through these
    constants so COST01 keeps every cycle literal in this module.

    Latencies are expressed in DCART cycles (230 MHz unless the shard
    config overrides the clock): the network numbers model a same-rack
    RDMA-class fabric (~10 us one-way), and the catch-up replay cost
    mirrors :attr:`DurabilityCosts.recovery_replay_op_us` at the default
    clock.
    """

    #: Coordinator work per routed op: bucket hash + route-table lookup.
    route_cycles_per_op: int = 2
    #: Parallel routing lanes at the coordinator (CRC + table lookup is
    #: embarrassingly parallel; width matches one shard's SOU count so
    #: routing only bottlenecks once shards outnumber lanes).
    route_lanes: int = 16
    #: One-way network hop primary <-> coordinator / primary <-> replica
    #: (~10 us at 230 MHz).
    link_latency_cycles: int = 2300
    #: Replication-link stream bandwidth (WAL frames on the wire).
    link_bandwidth_gb_s: float = 10.0
    #: Heartbeat cadence on the cluster cycle clock (~5 us — a few
    #: serving batches between beats, so a fail-stop is detectable
    #: within a handful of batch boundaries rather than a whole run).
    heartbeat_interval_cycles: int = 1150
    #: Missed heartbeats before a shard turns SUSPECT.
    suspect_after_misses: int = 2
    #: Missed heartbeats before a SUSPECT shard is declared DEAD.
    dead_after_misses: int = 4
    #: Fixed failover bookkeeping: promote the replica, repoint routes
    #: (~20 us).
    promotion_cycles: int = 4600
    #: Replaying one committed WAL-tail op into the promoted replica
    #: (DRAM-bound upsert, ~0.25 us — the recovery replay cost).
    catchup_replay_cycles_per_op: int = 58
    #: Re-enqueueing one hinted-handoff op onto the promoted primary.
    handoff_cycles_per_op: int = 6
    #: Coordinator-visible cost of moving one resident key during a
    #: rebalancer bucket migration: extract + frame + insert on the
    #: target, with the bulk transfer DMA-overlapped (the route-table
    #: swap, not the byte copy, is what serialises against traffic).
    migration_cycles_per_key: int = 20
    #: Coordinator-side cost of one rebalance evaluation pass.
    rebalance_check_cycles: int = 200

    def __post_init__(self) -> None:
        _positive(
            route_cycles_per_op=self.route_cycles_per_op,
            route_lanes=self.route_lanes,
            link_latency_cycles=self.link_latency_cycles,
            link_bandwidth_gb_s=self.link_bandwidth_gb_s,
            heartbeat_interval_cycles=self.heartbeat_interval_cycles,
            suspect_after_misses=self.suspect_after_misses,
            dead_after_misses=self.dead_after_misses,
            promotion_cycles=self.promotion_cycles,
            catchup_replay_cycles_per_op=self.catchup_replay_cycles_per_op,
            handoff_cycles_per_op=self.handoff_cycles_per_op,
            migration_cycles_per_key=self.migration_cycles_per_key,
            rebalance_check_cycles=self.rebalance_check_cycles,
        )
        if self.dead_after_misses <= self.suspect_after_misses:
            raise ConfigError(
                "dead_after_misses must exceed suspect_after_misses: "
                f"{self.dead_after_misses} <= {self.suspect_after_misses}"
            )

    def route_batch_cycles(self, n_ops: int) -> int:
        """Coordinator cycles to route an ``n_ops`` batch (ceil over lanes)."""
        if n_ops <= 0:
            return 0
        total = n_ops * self.route_cycles_per_op
        return -(-total // self.route_lanes)

    def link_transfer_cycles(self, n_bytes: int, clock_hz: float) -> int:
        """Cycles to ship ``n_bytes`` over the replication link (ceil)."""
        if n_bytes <= 0:
            return 0
        seconds = n_bytes / (self.link_bandwidth_gb_s * 1e9)
        return max(1, int(seconds * clock_hz) + 1)


@dataclass(frozen=True)
class PowerModel:
    """Average electrical power while executing the workload (watts).

    Calibrated: see module docstring.  Energy = power × simulated time,
    mirroring how CPU Energy Meter / nvidia-smi / xbutil integrate power
    over the run.
    """

    cpu_watts: float = 135.0
    gpu_watts: float = 165.0
    fpga_watts: float = 42.0

    def __post_init__(self) -> None:
        _positive(
            cpu_watts=self.cpu_watts,
            gpu_watts=self.gpu_watts,
            fpga_watts=self.fpga_watts,
        )

    def watts_for(self, kind: str) -> float:
        """The draw for a platform ``kind`` (``cpu``/``gpu``/``fpga``).

        The experiment platform's platform-cost dimension re-prices a
        stored run's energy under alternative power draws; since
        energy = power × time, rescaling by the watts ratio is exact.
        """
        try:
            return {
                "cpu": self.cpu_watts,
                "gpu": self.gpu_watts,
                "fpga": self.fpga_watts,
            }[kind]
        except KeyError:
            raise ConfigError(f"unknown platform kind: {kind!r}") from None


#: Per-engine contention penalty for the CPU baselines (ns per queued
#: waiter).  One table, here, so every billed latency in the tree traces
#: to this module (the COST01 contract): ROWEX lock convoys pay a futex
#: round trip + line ping-pong; Heart's CAS retries pay the
#: RAM-resident-line round trip [21]; OLC's version checks queue more
#: cheaply than convoys; SMART's read delegation keeps retries on a
#: locally cached line.  Ordering calibrated to Fig. 7.
ENGINE_CONTENTION_PENALTY_NS: Dict[str, float] = {
    "ART": 400.0,
    "Heart": 220.0,
    "OLC": 250.0,
    "SMART": 90.0,
}

DEFAULT_CLUSTER_COSTS = ClusterCosts()
DEFAULT_CPU_COSTS = CpuCosts()
DEFAULT_DURABILITY_COSTS = DurabilityCosts()
DEFAULT_GPU_COSTS = GpuCosts()
DEFAULT_FPGA_COSTS = FpgaCosts()
DEFAULT_CTT_COSTS = SoftwareCttCosts()
DEFAULT_POWER = PowerModel()
