"""Calibrated platform cost models.

Every latency, throughput, and power constant used by the engines lives
in :mod:`repro.model.costs`, in one place, with its provenance: either a
figure the paper itself cites (the 15× RAM-vs-L1 CAS slowdown), a public
datasheet number (HBM bandwidth, clock rates), or a calibration target
derived from the paper's reported ratios (platform power draws chosen so
that energy-ratio / speedup-ratio matches Fig. 9 vs. Fig. 11).

:mod:`repro.model.platform` wraps them into the three platform
descriptors of the evaluation: the 2×48-core Xeon host, the A100 GPU,
and the Alveo U280 FPGA.
"""

from repro.model.costs import CpuCosts, FpgaCosts, GpuCosts
from repro.model.platform import (
    CPU_PLATFORM,
    FPGA_PLATFORM,
    GPU_PLATFORM,
    Platform,
)

__all__ = [
    "CPU_PLATFORM",
    "CpuCosts",
    "FPGA_PLATFORM",
    "FpgaCosts",
    "GPU_PLATFORM",
    "GpuCosts",
    "Platform",
]
