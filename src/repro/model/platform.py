"""Platform descriptors for the three hardware targets of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memsim.dram import DRAM_DDR4, GDDR_A100, HBM2, MemoryModel
from repro.model.costs import DEFAULT_POWER


@dataclass(frozen=True)
class Platform:
    """A compute platform: parallel resources, memory, and power draw."""

    name: str
    kind: str                  # "cpu" | "gpu" | "fpga"
    parallel_units: int        # threads / resident warps / SOUs
    memory: MemoryModel
    active_watts: float

    def __post_init__(self):
        if self.kind not in ("cpu", "gpu", "fpga"):
            raise ConfigError(f"unknown platform kind: {self.kind!r}")
        if self.parallel_units <= 0:
            raise ConfigError(f"parallel_units must be positive: {self.parallel_units}")
        if self.active_watts <= 0:
            raise ConfigError(f"active_watts must be positive: {self.active_watts}")

    def energy_joules(self, seconds: float) -> float:
        """Energy for a run of ``seconds`` (power-meter style integral)."""
        if seconds < 0:
            raise ConfigError(f"duration must be >= 0: {seconds}")
        return self.active_watts * seconds


CPU_PLATFORM = Platform(
    name="2x Intel Xeon Platinum 8468 (96 cores)",
    kind="cpu",
    parallel_units=96,
    memory=DRAM_DDR4,
    active_watts=DEFAULT_POWER.cpu_watts,
)

GPU_PLATFORM = Platform(
    name="NVIDIA A100 (108 SMs)",
    kind="gpu",
    parallel_units=1024,  # resident warps
    memory=GDDR_A100,
    active_watts=DEFAULT_POWER.gpu_watts,
)

FPGA_PLATFORM = Platform(
    name="Xilinx Alveo U280 (XCU280, 230 MHz)",
    kind="fpga",
    parallel_units=16,  # SOUs
    memory=HBM2,
    active_watts=DEFAULT_POWER.fpga_watts,
)
