"""Recovery: latest valid checkpoint + committed WAL tail → a live tree.

The recovery contract, verified by the chaos harness's crash loop:

1. **Checkpoint selection** — walk the manifests newest-first; the first
   whose sha256 signs its payload wins.  Torn manifests, hash
   mismatches, and undecodable payloads are *skipped and reported*, not
   fatal — a machine that crashed mid-checkpoint must still come back
   from the previous one.
2. **WAL replay** — scan the log (CRC-framed; the scan stops at the
   first torn record), then apply the ops of every *committed* batch
   strictly after the checkpoint's batch index, in batch order.
   Uncommitted groups and the torn tail are never applied.
3. **Verification** — run the standalone ART invariant validator
   (:mod:`repro.art.validate`) over the rebuilt tree; its report ships
   in the result so callers can refuse a structurally damaged recovery.

Replay itself can be crashed (the harness's ``replay`` crash point).
That is safe by construction: replay only reads the log and rebuilds
in-memory state, so a crash mid-replay simply means recovery runs again
from the same files — recovery is idempotent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.art.tree import AdaptiveRadixTree
from repro.art.validate import ValidationReport, validate_tree
from repro.durability.checkpoint import (
    list_checkpoints,
    load_checkpoint,
    restore_tree,
)
from repro.durability.wal import WalScan, scan_wal
from repro.errors import RecoveryError, SimulatedCrash, SimulationError
from repro.log import get_logger

LOG = get_logger("durability")

WAL_FILENAME = "wal.log"


def wal_path(directory: str) -> str:
    return os.path.join(directory, WAL_FILENAME)


@dataclass
class RecoveryResult:
    """Everything one recovery pass established."""

    directory: str
    tree: AdaptiveRadixTree
    #: Batch index the chosen checkpoint covers (``-1`` = bulk load only).
    checkpoint_batch: int
    #: Accelerator warm state carried by the checkpoint (shortcut rows…).
    accel_state: Dict = field(default_factory=dict)
    #: ``"seq <n>: <reason>"`` for every checkpoint that failed its check.
    checkpoints_skipped: List[str] = field(default_factory=list)
    batches_replayed: int = 0
    ops_replayed: int = 0
    #: Batches that began but never committed — discarded, never applied.
    uncommitted_batches: int = 0
    uncommitted_ops_skipped: int = 0
    wal_torn: bool = False
    wal_torn_reason: str = ""
    #: Highest committed batch in the WAL (what the tree now reflects).
    committed_through: int = -1
    validation: ValidationReport = field(default_factory=ValidationReport)

    @property
    def ok(self) -> bool:
        return self.validation.ok

    def summary(self) -> str:
        torn = f", torn WAL tail ({self.wal_torn_reason})" if self.wal_torn else ""
        skipped = (
            f", {len(self.checkpoints_skipped)} corrupt checkpoints skipped"
            if self.checkpoints_skipped
            else ""
        )
        return (
            f"recovered {len(self.tree)} keys from checkpoint@batch "
            f"{self.checkpoint_batch} + {self.batches_replayed} replayed "
            f"batches ({self.ops_replayed} ops, committed through "
            f"{self.committed_through}); skipped "
            f"{self.uncommitted_ops_skipped} uncommitted ops{torn}{skipped}; "
            f"tree {self.validation.summary()}"
        )

    def to_dict(self) -> Dict:
        """JSON-safe report (for ``repro recover --json``)."""
        return {
            "directory": self.directory,
            "n_keys": len(self.tree),
            "checkpoint_batch": self.checkpoint_batch,
            "checkpoints_skipped": list(self.checkpoints_skipped),
            "batches_replayed": self.batches_replayed,
            "ops_replayed": self.ops_replayed,
            "uncommitted_batches": self.uncommitted_batches,
            "uncommitted_ops_skipped": self.uncommitted_ops_skipped,
            "wal_torn": self.wal_torn,
            "wal_torn_reason": self.wal_torn_reason,
            "committed_through": self.committed_through,
            "validation_ok": self.validation.ok,
            "violations": [str(v) for v in self.validation.violations],
        }


def select_checkpoint(
    directory: str, skipped: List[str]
) -> Optional[tuple]:
    """Newest checkpoint that passes verification, or ``None``.

    Appends a reason line to ``skipped`` for every rejected candidate.
    """
    for info in list_checkpoints(directory):
        try:
            batch_index, items, accel_state = load_checkpoint(info)
            return info, batch_index, items, accel_state
        except SimulationError as exc:
            LOG.warning("skipping checkpoint seq %d: %s", info.seq, exc)
            skipped.append(f"seq {info.seq}: {exc}")
    return None


def recover(
    directory: str,
    crash_at_op: Optional[int] = None,
    validate: bool = True,
) -> RecoveryResult:
    """Rebuild the tree from ``directory``'s checkpoints and WAL.

    Raises :class:`RecoveryError` only when the directory holds no
    usable state at all (no valid checkpoint *and* no WAL).  Damaged
    artifacts short of that are skipped and reported on the result.

    ``crash_at_op`` is the chaos harness's mid-replay kill switch: raise
    :class:`SimulatedCrash` after applying that many WAL ops.  Because
    replay never writes to the log, the subsequent recovery attempt sees
    identical files — the property the crash loop asserts.
    """
    skipped: List[str] = []
    chosen = select_checkpoint(directory, skipped)
    scan: WalScan = scan_wal(wal_path(directory))

    if chosen is None and not scan.records:
        raise RecoveryError(
            f"no recoverable state in {directory!r}: "
            f"{len(skipped)} corrupt checkpoints, empty/missing WAL"
        )

    if chosen is not None:
        info, checkpoint_batch, items, accel_state = chosen
        tree = restore_tree(items)
        LOG.info(
            "recovery base: checkpoint seq %d (batch %d, %d keys)",
            info.seq, checkpoint_batch, len(items),
        )
    else:
        tree = AdaptiveRadixTree()
        checkpoint_batch = -1
        accel_state = {}
        LOG.warning(
            "recovery base: no valid checkpoint, replaying full WAL from empty"
        )

    result = RecoveryResult(
        directory=directory,
        tree=tree,
        checkpoint_batch=checkpoint_batch,
        accel_state=accel_state,
        checkpoints_skipped=skipped,
        uncommitted_batches=len(scan.uncommitted),
        uncommitted_ops_skipped=scan.uncommitted_ops,
        wal_torn=scan.torn,
        wal_torn_reason=scan.torn_reason,
        committed_through=max(scan.committed_through, checkpoint_batch),
    )

    replayed_batches = set()
    for batch, op in scan.committed_ops_after(checkpoint_batch):
        if crash_at_op is not None and result.ops_replayed >= crash_at_op:
            raise SimulatedCrash(
                f"crash mid-replay after {result.ops_replayed} ops",
                {"point": "replay", "ops_replayed": result.ops_replayed,
                 "batch": batch},
            )
        op.apply(tree)
        result.ops_replayed += 1
        replayed_batches.add(batch)
    result.batches_replayed = len(replayed_batches)

    if validate:
        result.validation = validate_tree(tree)
    LOG.info("%s", result.summary())
    return result
