"""Write-ahead log: append-only, CRC-framed, batch-delimited.

DCART's batch-overlap execution gives the reproduction natural
consistency points: a combined batch either executes fully or not at
all, so the WAL groups its records per batch between BEGIN and COMMIT
markers.  Recovery replays *committed* batches only; an interrupted
batch (BEGIN without COMMIT, or a record torn mid-write) is discarded —
the same contract a transactional store honours.

On-disk format (little-endian)::

    file   := header record*
    header := MAGIC "DWAL" | u16 version | u16 reserved
    record := u32 payload_len | u32 crc32(payload) | payload
    payload:= u8 kind | kind-specific fields

    BEGIN  (kind 1) := u32 batch_index
    OP     (kind 2) := u8 op_kind | u64 op_id | u16 key_len | key | value
    COMMIT (kind 3) := u32 batch_index | u32 n_ops

Values use a small tagged codec (None/bool/int/float/bytes/str) so the
log is self-describing without pickle.  Torn-write detection is purely
local: a record whose header is short, whose length overruns the file,
or whose CRC mismatches ends the scan — everything before it is intact
(appends never rewrite earlier bytes), everything from it on is the torn
tail.

Every append is billed through
:class:`~repro.model.costs.DurabilityCosts`; a COMMIT is an fsync point
(the batch's durability barrier), modelled — and optionally executed
with a real ``os.fsync`` — by :meth:`WriteAheadLog.sync`.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.log import get_logger
from repro.model.costs import DEFAULT_DURABILITY_COSTS, DurabilityCosts
from repro.workloads.ops import OpKind, Operation

LOG = get_logger("durability")

WAL_MAGIC = b"DWAL"
WAL_VERSION = 1
FILE_HEADER = WAL_MAGIC + struct.pack("<HH", WAL_VERSION, 0)

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

REC_BEGIN = 1
REC_OP = 2
REC_COMMIT = 3

#: WAL op encoding of the mutating :class:`OpKind` members.
_OP_TO_CODE = {OpKind.WRITE: 1, OpKind.DELETE: 2}
_CODE_TO_OP = {code: kind for kind, code in _OP_TO_CODE.items()}

# ---------------------------------------------------------------------------
# value codec
# ---------------------------------------------------------------------------

_V_NONE, _V_FALSE, _V_TRUE, _V_INT, _V_FLOAT, _V_BYTES, _V_STR = range(7)


def encode_value(value: object) -> bytes:
    """Encode one op payload value into the tagged wire form."""
    if value is None:
        return bytes([_V_NONE])
    if value is False:
        return bytes([_V_FALSE])
    if value is True:
        return bytes([_V_TRUE])
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        return bytes([_V_INT]) + struct.pack("<H", len(raw)) + raw
    if isinstance(value, float):
        return bytes([_V_FLOAT]) + struct.pack("<d", value)
    if isinstance(value, (bytes, bytearray)):
        return bytes([_V_BYTES]) + struct.pack("<I", len(value)) + bytes(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return bytes([_V_STR]) + struct.pack("<I", len(raw)) + raw
    raise SimulationError(
        f"WAL cannot encode value of type {type(value).__name__}; "
        "durable workloads carry None/bool/int/float/bytes/str payloads"
    )


def decode_value(buf: bytes, offset: int) -> Tuple[object, int]:
    """Decode one tagged value; returns ``(value, next_offset)``."""
    tag = buf[offset]
    offset += 1
    if tag == _V_NONE:
        return None, offset
    if tag == _V_FALSE:
        return False, offset
    if tag == _V_TRUE:
        return True, offset
    if tag == _V_INT:
        (length,) = struct.unpack_from("<H", buf, offset)
        offset += 2
        raw = buf[offset : offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _V_FLOAT:
        (value,) = struct.unpack_from("<d", buf, offset)
        return value, offset + 8
    if tag in (_V_BYTES, _V_STR):
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        raw = buf[offset : offset + length]
        return (raw if tag == _V_BYTES else raw.decode("utf-8")), offset + length
    raise SimulationError(f"unknown WAL value tag {tag}")


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BeginRecord:
    """Start of one batch's record group."""

    batch: int


@dataclass(frozen=True)
class OpRecord:
    """One mutating operation inside a batch group."""

    op_kind: OpKind
    op_id: int
    key: bytes
    value: object = None

    def apply(self, tree) -> None:
        """Replay this op against ``tree`` (upsert/delete semantics)."""
        from repro.errors import KeyNotFoundError

        if self.op_kind is OpKind.WRITE:
            tree.upsert(self.key, self.value)
        else:
            try:
                tree.delete(self.key)
            except KeyNotFoundError:
                pass  # deleting an absent key is a no-op, as in the run


@dataclass(frozen=True)
class CommitRecord:
    """Durability barrier: the batch's ops are all on disk before this."""

    batch: int
    n_ops: int


WalRecord = Union[BeginRecord, OpRecord, CommitRecord]


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length+CRC frame."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def encode_record(record: WalRecord) -> bytes:
    """Serialise one record payload (unframed)."""
    if isinstance(record, BeginRecord):
        return bytes([REC_BEGIN]) + struct.pack("<I", record.batch)
    if isinstance(record, OpRecord):
        return (
            bytes([REC_OP, _OP_TO_CODE[record.op_kind]])
            + struct.pack("<QH", record.op_id, len(record.key))
            + record.key
            + encode_value(record.value)
        )
    if isinstance(record, CommitRecord):
        return bytes([REC_COMMIT]) + struct.pack("<II", record.batch, record.n_ops)
    raise SimulationError(f"unknown WAL record {record!r}")


def decode_record(payload: bytes) -> WalRecord:
    """Parse one framed record's payload back into its dataclass."""
    if not payload:
        raise SimulationError("empty WAL record payload")
    kind = payload[0]
    if kind == REC_BEGIN:
        (batch,) = struct.unpack_from("<I", payload, 1)
        return BeginRecord(batch)
    if kind == REC_OP:
        code = payload[1]
        if code not in _CODE_TO_OP:
            raise SimulationError(f"unknown WAL op code {code}")
        op_id, key_len = struct.unpack_from("<QH", payload, 2)
        offset = 2 + 10
        key = payload[offset : offset + key_len]
        value, _ = decode_value(payload, offset + key_len)
        return OpRecord(_CODE_TO_OP[code], op_id, key, value)
    if kind == REC_COMMIT:
        batch, n_ops = struct.unpack_from("<II", payload, 1)
        return CommitRecord(batch, n_ops)
    raise SimulationError(f"unknown WAL record kind {kind}")


def op_record(op: Operation) -> OpRecord:
    """The WAL form of a workload operation (mutating kinds only)."""
    if op.kind not in _OP_TO_CODE:
        raise SimulationError(f"op kind {op.kind} is not WAL-loggable")
    return OpRecord(op.kind, op.op_id, bytes(op.key), op.value)


def is_loggable(op: Operation) -> bool:
    """Whether the op mutates the tree (reads/scans are not logged)."""
    return op.kind in _OP_TO_CODE


def encode_batch_frames(batch_index: int, operations: List[Operation]) -> bytes:
    """One batch's complete framed record group, as raw log bytes.

    ``BEGIN / op* / COMMIT`` with every record length+CRC framed —
    byte-identical to what :class:`WriteAheadLog` would append for the
    batch.  The cluster replication link ships exactly these bytes, so
    a replica's catch-up replay decodes the same wire format recovery
    does.  Non-mutating ops are skipped, as in :meth:`log_op` usage.
    """
    loggable = [op for op in operations if is_loggable(op)]
    parts = [frame(encode_record(BeginRecord(batch_index)))]
    parts.extend(frame(encode_record(op_record(op))) for op in loggable)
    parts.append(frame(encode_record(CommitRecord(batch_index, len(loggable)))))
    return b"".join(parts)


def decode_frames(data: bytes, offset: int = 0) -> List[WalRecord]:
    """Strict decode of a framed record stream held in memory.

    Unlike :func:`scan_wal` — which tolerates a torn tail because a
    crash legitimately tears the on-disk log — an in-memory replication
    stream has no torn-write failure mode, so any framing or CRC damage
    here is an invariant violation and raises
    :class:`~repro.errors.SimulationError`.
    """
    records: List[WalRecord] = []
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            raise SimulationError(
                f"replication stream truncated at byte {offset}"
            )
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > len(data):
            raise SimulationError(
                f"replication stream record overruns buffer at byte {offset}"
            )
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            raise SimulationError(
                f"replication stream CRC mismatch at byte {offset}"
            )
        records.append(decode_record(payload))
        offset = start + length
    return records


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only log writer with fsync-point cost accounting.

    The writer flushes the OS buffer on every append so the chaos
    harness's crash points see exactly the bytes written before the
    kill; *durability* points (what a real device guarantees after power
    loss) are only the explicit :meth:`sync` calls, billed through the
    cost model and optionally executed with ``os.fsync``.
    """

    def __init__(
        self,
        path: str,
        costs: DurabilityCosts = DEFAULT_DURABILITY_COSTS,
        real_fsync: bool = False,
    ):
        self.path = path
        self.costs = costs
        self.real_fsync = real_fsync
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._file = open(path, "ab")
        if fresh:
            self._file.write(FILE_HEADER)
            self._file.flush()
        self.bytes_written = len(FILE_HEADER) if fresh else 0
        self.records_written = 0
        self.fsyncs = 0
        self.modelled_seconds = 0.0
        self._open_batch: Optional[int] = None

    # -- raw appends ---------------------------------------------------

    def append(self, record: WalRecord) -> int:
        """Frame and append one record; returns bytes written."""
        raw = frame(encode_record(record))
        self._file.write(raw)
        self._file.flush()
        self.bytes_written += len(raw)
        self.records_written += 1
        self.modelled_seconds += self.costs.wal_seconds(len(raw))
        return len(raw)

    def append_torn(self, record: WalRecord, keep_bytes: int) -> int:
        """Crash-injection hook: write only a prefix of the framed record.

        Models the power cut landing mid-sector: the record's first
        ``keep_bytes`` bytes reach the platter, the rest never do.  The
        scanner must detect the tail via length/CRC and skip it.
        """
        raw = frame(encode_record(record))
        keep = max(1, min(keep_bytes, len(raw) - 1))
        self._file.write(raw[:keep])
        self._file.flush()
        self.bytes_written += keep
        return keep

    def sync(self) -> None:
        """Cross an fsync point (durability barrier)."""
        self._file.flush()
        if self.real_fsync:
            os.fsync(self._file.fileno())
        self.fsyncs += 1
        self.modelled_seconds += self.costs.wal_seconds(0, n_fsyncs=1)

    # -- batch protocol ------------------------------------------------

    def begin_batch(self, batch_index: int) -> None:
        if self._open_batch is not None:
            raise SimulationError(
                f"batch {self._open_batch} still open; WAL batches do not nest"
            )
        self._open_batch = batch_index
        self.append(BeginRecord(batch_index))

    def log_op(self, op: Operation) -> None:
        if self._open_batch is None:
            raise SimulationError("log_op outside a WAL batch")
        self.append(op_record(op))

    def commit_batch(self, n_ops: int) -> None:
        """Append COMMIT and cross the batch's fsync point."""
        if self._open_batch is None:
            raise SimulationError("commit without an open WAL batch")
        self.append(CommitRecord(self._open_batch, n_ops))
        self.sync()
        self._open_batch = None

    def abandon_batch(self) -> None:
        """Forget the open batch without committing (crash paths)."""
        self._open_batch = None

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# scanner
# ---------------------------------------------------------------------------


@dataclass
class WalScan:
    """Everything a WAL scan established, torn tail included."""

    path: str
    records: List[WalRecord] = field(default_factory=list)
    #: Ops of every *committed* batch, keyed by batch index.
    committed: Dict[int, List[OpRecord]] = field(default_factory=dict)
    #: Batch indices that began but never committed (discarded on replay).
    uncommitted: List[int] = field(default_factory=list)
    uncommitted_ops: int = 0
    torn: bool = False
    torn_offset: Optional[int] = None
    torn_reason: str = ""
    bytes_scanned: int = 0

    @property
    def committed_through(self) -> int:
        """Highest committed batch index (``-1`` for an empty log)."""
        return max(self.committed) if self.committed else -1

    def committed_ops_after(self, after_batch: int) -> Iterator[Tuple[int, OpRecord]]:
        """Ops of committed batches strictly after ``after_batch``, in order."""
        for batch in sorted(self.committed):
            if batch <= after_batch:
                continue
            for op in self.committed[batch]:
                yield batch, op

    def summary(self) -> str:
        tail = (
            f", torn tail at byte {self.torn_offset} ({self.torn_reason})"
            if self.torn
            else ""
        )
        return (
            f"WAL {self.path}: {len(self.records)} records, "
            f"{len(self.committed)} committed batches "
            f"(through {self.committed_through}), "
            f"{len(self.uncommitted)} uncommitted{tail}"
        )


def scan_wal(path: str) -> WalScan:
    """Read a WAL, stopping cleanly at the first torn/corrupt record.

    Never raises on bad bytes: appends cannot damage earlier records, so
    everything before the first bad frame is trusted and everything from
    it on is reported as the torn tail.  A missing file scans as empty.
    """
    scan = WalScan(path=path)
    if not os.path.exists(path):
        return scan
    with open(path, "rb") as handle:
        data = handle.read()
    scan.bytes_scanned = len(data)

    offset = len(FILE_HEADER)
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        scan.torn = True
        scan.torn_offset = 0
        scan.torn_reason = "bad file magic"
        return scan

    open_batch: Optional[int] = None
    open_ops: List[OpRecord] = []
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            scan.torn = True
            scan.torn_offset = offset
            scan.torn_reason = "short frame header"
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > len(data):
            scan.torn = True
            scan.torn_offset = offset
            scan.torn_reason = "record overruns file"
            break
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            scan.torn = True
            scan.torn_offset = offset
            scan.torn_reason = "CRC mismatch"
            break
        try:
            record = decode_record(payload)
        except (SimulationError, struct.error, IndexError) as exc:
            scan.torn = True
            scan.torn_offset = offset
            scan.torn_reason = f"undecodable record: {exc}"
            break
        offset = start + length
        scan.records.append(record)

        if isinstance(record, BeginRecord):
            if open_batch is not None:
                # A BEGIN inside an open group: the previous group never
                # committed (crash between batches); discard it.
                scan.uncommitted.append(open_batch)
                scan.uncommitted_ops += len(open_ops)
            open_batch = record.batch
            open_ops = []
        elif isinstance(record, OpRecord):
            if open_batch is None:
                scan.torn = True
                scan.torn_offset = offset
                scan.torn_reason = "op record outside a batch group"
                break
            open_ops.append(record)
        elif isinstance(record, CommitRecord):
            if open_batch != record.batch or len(open_ops) != record.n_ops:
                scan.torn = True
                scan.torn_offset = offset
                scan.torn_reason = (
                    f"commit mismatch: group batch={open_batch} "
                    f"ops={len(open_ops)} vs commit batch={record.batch} "
                    f"n_ops={record.n_ops}"
                )
                break
            scan.committed[record.batch] = open_ops
            open_batch = None
            open_ops = []

    if open_batch is not None and not scan.torn:
        scan.uncommitted.append(open_batch)
        scan.uncommitted_ops += len(open_ops)
    if scan.torn and open_batch is not None:
        scan.uncommitted.append(open_batch)
        scan.uncommitted_ops += len(open_ops)
    if scan.torn:
        LOG.warning(
            "WAL %s: torn tail at byte %s (%s); %d committed batches kept",
            path, scan.torn_offset, scan.torn_reason, len(scan.committed),
        )
    return scan
