"""The DurabilityManager: what the accelerator calls, per batch.

Wiring (see :class:`~repro.core.accelerator.DcartAccelerator`):

* :meth:`attach` — once per run, before the first batch: opens the WAL
  and writes the **base checkpoint** (batch ``-1``) capturing the
  bulk-loaded tree, so recovery always has the load state to build on.
* :meth:`log_batch` — before SOU dispatch: appends
  ``BEGIN / op* / COMMIT`` for the batch's mutating ops.  The COMMIT is
  the batch's fsync point; only after it returns may the SOUs mutate
  the tree.  Crashing anywhere inside leaves an uncommitted (possibly
  torn) group that recovery discards — write-ahead in the strict sense.
* :meth:`maybe_checkpoint` — after the batch is applied: every
  ``checkpoint_every`` batches, snapshots tree + accelerator state.
* :meth:`snapshot` / billing — every byte and fsync is billed through
  :class:`~repro.model.costs.DurabilityCosts`; the accelerator converts
  the returned seconds to cycles and adds them to the batch, so
  durability shows up honestly in throughput and the energy model.

Crash points are *armed* (by the fault injector, from a
:class:`~repro.faults.schedule.CrashFault` event) rather than thrown by
the caller, so the kill lands at the exact protocol step being tested:
mid-append (torn record), pre-commit (complete group, no COMMIT), torn
commit, mid-checkpoint payload, or mid-checkpoint manifest.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.art.tree import AdaptiveRadixTree
from repro.durability import checkpoint as ckpt
from repro.durability.recover import WAL_FILENAME
from repro.durability.wal import (
    CommitRecord,
    WriteAheadLog,
    is_loggable,
    op_record,
)
from repro.errors import ConfigError, SimulatedCrash
from repro.log import get_logger
from repro.model.costs import DEFAULT_DURABILITY_COSTS, DurabilityCosts
from repro.workloads.ops import Operation

LOG = get_logger("durability")

#: Crash points the manager understands (the WAL-protocol subset; the
#: checkpoint module owns its own two, re-exported here for one matrix).
CRASH_WAL_MID_APPEND = "wal-mid-append"
CRASH_WAL_PRE_COMMIT = "wal-pre-commit"
CRASH_WAL_TORN_COMMIT = "wal-torn-commit"
CRASH_POINTS = (
    CRASH_WAL_MID_APPEND,
    CRASH_WAL_PRE_COMMIT,
    CRASH_WAL_TORN_COMMIT,
    ckpt.CRASH_PAYLOAD,
    ckpt.CRASH_MANIFEST,
)


class DurabilityManager:
    """WAL + checkpoint lifecycle for one accelerator run."""

    def __init__(
        self,
        directory: str,
        checkpoint_every: int = 4,
        costs: DurabilityCosts = DEFAULT_DURABILITY_COSTS,
        real_fsync: bool = False,
    ):
        if checkpoint_every <= 0:
            raise ConfigError(
                f"checkpoint_every must be positive: {checkpoint_every}"
            )
        self.directory = directory
        self.checkpoint_every = checkpoint_every
        self.costs = costs
        self.real_fsync = real_fsync
        self.wal: Optional[WriteAheadLog] = None
        self.checkpoints_written = 0
        self.checkpoint_bytes = 0
        self.checkpoint_seconds = 0.0
        self.ops_logged = 0
        self.batches_logged = 0
        self._armed_point: Optional[str] = None
        self._armed_detail: int = 0

    # ------------------------------------------------------------------
    # crash arming (fault-injector hook)
    # ------------------------------------------------------------------

    def arm_crash(self, point: str, detail: int = 0) -> None:
        """Schedule a kill at ``point`` in the next batch's protocol."""
        if point not in CRASH_POINTS:
            raise ConfigError(
                f"unknown crash point {point!r}; expected one of {CRASH_POINTS}"
            )
        self._armed_point = point
        self._armed_detail = detail
        LOG.info("crash point armed: %s (detail %d)", point, detail)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, tree: AdaptiveRadixTree) -> float:
        """Open the WAL and write the bulk-load base checkpoint.

        Returns the modelled seconds the base snapshot cost.  Idempotent
        per run: re-attaching to the same directory continues the
        existing WAL (a restarted run appends after recovery).
        """
        os.makedirs(self.directory, exist_ok=True)
        seconds = self._checkpoint(tree, batch_index=-1, accel_state={})
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_FILENAME),
            costs=self.costs,
            real_fsync=self.real_fsync,
        )
        return seconds

    def log_batch(self, batch_index: int, operations: List[Operation]) -> float:
        """WAL one batch ahead of execution; returns modelled seconds.

        Batches with no mutating ops are not logged at all (a read-only
        batch needs no durability barrier and costs nothing).
        """
        if self.wal is None:
            raise ConfigError("DurabilityManager.log_batch before attach()")
        mutating = [op for op in operations if is_loggable(op)]
        if not mutating:
            return 0.0
        wal = self.wal
        seconds_before = wal.modelled_seconds

        armed = self._armed_point
        wal.begin_batch(batch_index)
        if armed == CRASH_WAL_MID_APPEND:
            # Append a prefix of the group, then die mid-record.
            keep_ops = self._armed_detail % max(1, len(mutating))
            for op in mutating[:keep_ops]:
                wal.log_op(op)
            torn = op_record(mutating[keep_ops])
            kept = wal.append_torn(torn, keep_bytes=4 + self._armed_detail % 7)
            self._disarm()
            wal.abandon_batch()
            raise SimulatedCrash(
                f"crash mid-WAL-append in batch {batch_index}",
                {"point": CRASH_WAL_MID_APPEND, "batch": batch_index,
                 "ops_appended": keep_ops, "torn_record_bytes": kept},
            )
        for op in mutating:
            wal.log_op(op)
        if armed == CRASH_WAL_PRE_COMMIT:
            self._disarm()
            wal.abandon_batch()
            raise SimulatedCrash(
                f"crash before COMMIT of batch {batch_index}",
                {"point": CRASH_WAL_PRE_COMMIT, "batch": batch_index,
                 "ops_appended": len(mutating)},
            )
        if armed == CRASH_WAL_TORN_COMMIT:
            commit = CommitRecord(batch_index, len(mutating))
            kept = wal.append_torn(commit, keep_bytes=5 + self._armed_detail % 4)
            self._disarm()
            wal.abandon_batch()
            raise SimulatedCrash(
                f"crash mid-COMMIT of batch {batch_index}",
                {"point": CRASH_WAL_TORN_COMMIT, "batch": batch_index,
                 "torn_record_bytes": kept},
            )
        wal.commit_batch(len(mutating))
        self.ops_logged += len(mutating)
        self.batches_logged += 1
        return wal.modelled_seconds - seconds_before

    def maybe_checkpoint(
        self,
        batch_index: int,
        tree: AdaptiveRadixTree,
        accel_state: Optional[Dict] = None,
    ) -> float:
        """Checkpoint if due (or if a checkpoint crash point is armed)."""
        armed = self._armed_point in (ckpt.CRASH_PAYLOAD, ckpt.CRASH_MANIFEST)
        due = (batch_index + 1) % self.checkpoint_every == 0
        if not due and not armed:
            return 0.0
        crash = self._armed_point if armed else None
        if armed:
            self._disarm()
        return self._checkpoint(tree, batch_index, accel_state or {}, crash=crash)

    def _checkpoint(
        self,
        tree: AdaptiveRadixTree,
        batch_index: int,
        accel_state: Dict,
        crash: Optional[str] = None,
    ) -> float:
        info = ckpt.write_checkpoint(
            self.directory,
            tree,
            batch_index,
            accel_state=accel_state,
            real_fsync=self.real_fsync,
            crash=crash,
        )
        self.checkpoints_written += 1
        self.checkpoint_bytes += info.manifest["payload_bytes"]
        seconds = self.costs.checkpoint_seconds(info.manifest["payload_bytes"])
        self.checkpoint_seconds += seconds
        return seconds

    def _disarm(self) -> None:
        self._armed_point = None
        self._armed_detail = 0

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Durability telemetry for ``RunResult.extra``."""
        wal_bytes = self.wal.bytes_written if self.wal else 0
        wal_fsyncs = self.wal.fsyncs if self.wal else 0
        wal_seconds = self.wal.modelled_seconds if self.wal else 0.0
        return {
            "wal_bytes": wal_bytes,
            "wal_records": self.wal.records_written if self.wal else 0,
            "wal_fsyncs": wal_fsyncs,
            "wal_seconds": wal_seconds,
            "wal_ops_logged": self.ops_logged,
            "wal_batches_logged": self.batches_logged,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_seconds": self.checkpoint_seconds,
        }

    def report_metrics(self, registry) -> None:
        """Mirror :meth:`snapshot` into a MetricsRegistry (``durability.*``).

        Integer totals become counters, modelled seconds become gauges —
        the same values ``RunResult.extra`` carries, under stable names.
        """
        for key, value in self.snapshot().items():
            name = f"durability.{key}"
            if isinstance(value, float):
                registry.gauge(name, value)
            else:
                registry.counter(name, value)


def accelerator_state(shortcuts, tables) -> Dict:
    """Snapshot the warm accelerator state worth checkpointing.

    Shortcut rows are stored as hex-keyed address pairs; after recovery
    the addresses are stale (the rebuilt tree re-allocates), so they are
    carried for telemetry/warm-up heuristics, not dereferenced blindly —
    exactly how the SOU already treats a possibly-stale shortcut.
    """
    state: Dict = {}
    if shortcuts is not None:
        state["shortcut_entries"] = [
            [entry.key.hex(), entry.target_address, entry.parent_address]
            for entry in (shortcuts._entries[k] for k in sorted(shortcuts._entries))
            if not entry.corrupted
        ]
    if tables is not None:
        state["bucket_spilled_bytes"] = tables.spilled_bytes
    return state
