"""Crash-consistent checkpoints of the ART + accelerator state.

A checkpoint is two files in the durability directory:

* ``ckpt-<seq>.bin`` — the payload: the same length+CRC framing as the
  WAL, carrying a header record (format version, the batch index the
  image covers, key count), one record per ``(key, value)`` item in
  ascending key order, and one accelerator-state record (shortcut-table
  entries, bucket residue) as CRC-protected JSON.
* ``ckpt-<seq>.json`` — the manifest: payload filename, size, and
  sha256, plus the tree's node census.  **The manifest is the commit
  record**: a checkpoint exists iff its manifest parses and its sha256
  matches the payload bytes.

Write order is the crash-consistency argument: payload to a temp name,
fsync, atomic rename; then manifest to a temp name, fsync, atomic
rename.  A crash at any point leaves either no manifest (payload temp
ignored) or a manifest whose hash exposes a damaged payload — recovery
skips both and falls back to the previous checkpoint.

The ART needs no structural serialisation: a radix tree is canonical in
its key set, so reloading the sorted items through plain inserts
reproduces the exact node structure the live tree had (the property
tests pin this).  What must be carried is the *data*: keys, values, and
the accelerator's warm state.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.art.tree import AdaptiveRadixTree
from repro.durability.wal import _FRAME, decode_value, encode_value, frame
from repro.errors import SimulatedCrash, SimulationError
from repro.log import get_logger

LOG = get_logger("durability")

CHECKPOINT_FORMAT = 1
PAYLOAD_SUFFIX = ".bin"
MANIFEST_SUFFIX = ".json"
TMP_SUFFIX = ".tmp"

REC_CKPT_HEADER = 10
REC_CKPT_ITEM = 11
REC_CKPT_ACCEL = 12

#: Crash points :func:`write_checkpoint` can be armed with.
CRASH_PAYLOAD = "ckpt-payload"
CRASH_MANIFEST = "ckpt-manifest"


def checkpoint_name(batch_index: int) -> str:
    """Stem of the checkpoint covering batches up to ``batch_index``.

    ``batch_index`` is ``-1`` for the bulk-load (pre-batch) snapshot, so
    sequence numbers are stored offset by one to stay non-negative.
    """
    return f"ckpt-{batch_index + 1:08d}"


@dataclass
class CheckpointInfo:
    """One on-disk checkpoint, located via its manifest."""

    directory: str
    seq: int
    manifest: Dict = field(default_factory=dict)

    @property
    def batch_index(self) -> int:
        return self.manifest.get("batch_index", self.seq - 1)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, f"ckpt-{self.seq:08d}{MANIFEST_SUFFIX}")

    @property
    def payload_path(self) -> str:
        return os.path.join(self.directory, self.manifest["payload"])


def _encode_item(key: bytes, value: object) -> bytes:
    return (
        bytes([REC_CKPT_ITEM])
        + struct.pack("<H", len(key))
        + key
        + encode_value(value)
    )


def build_payload(
    tree: AdaptiveRadixTree,
    batch_index: int,
    accel_state: Optional[Dict] = None,
) -> bytes:
    """Serialise the tree + accelerator state into the framed payload."""
    chunks = [
        frame(
            bytes([REC_CKPT_HEADER])
            + struct.pack("<IqQ", CHECKPOINT_FORMAT, batch_index, len(tree))
        )
    ]
    for key, value in tree.items():
        chunks.append(frame(_encode_item(key, value)))
    accel_json = json.dumps(accel_state or {}, sort_keys=True).encode("utf-8")
    chunks.append(frame(bytes([REC_CKPT_ACCEL]) + accel_json))
    return b"".join(chunks)


def parse_payload(data: bytes) -> Tuple[int, List[Tuple[bytes, object]], Dict]:
    """Decode a payload; returns ``(batch_index, items, accel_state)``.

    Raises :class:`SimulationError` on any framing/CRC/structure damage —
    the caller (recovery) treats that as "this checkpoint is corrupt".
    """
    offset = 0
    batch_index: Optional[int] = None
    declared_keys = 0
    items: List[Tuple[bytes, object]] = []
    accel_state: Dict = {}
    saw_accel = False
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            raise SimulationError("checkpoint payload truncated mid-frame")
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        if start + length > len(data):
            raise SimulationError("checkpoint record overruns payload")
        payload = data[start : start + length]
        if zlib.crc32(payload) != crc:
            raise SimulationError("checkpoint record CRC mismatch")
        kind = payload[0]
        if kind == REC_CKPT_HEADER:
            version, batch_index, declared_keys = struct.unpack_from(
                "<IqQ", payload, 1
            )
            if version != CHECKPOINT_FORMAT:
                raise SimulationError(f"unknown checkpoint format {version}")
        elif kind == REC_CKPT_ITEM:
            (key_len,) = struct.unpack_from("<H", payload, 1)
            key = payload[3 : 3 + key_len]
            value, _ = decode_value(payload, 3 + key_len)
            items.append((key, value))
        elif kind == REC_CKPT_ACCEL:
            accel_state = json.loads(payload[1:].decode("utf-8"))
            saw_accel = True
        else:
            raise SimulationError(f"unknown checkpoint record kind {kind}")
        offset = start + length
    if batch_index is None:
        raise SimulationError("checkpoint payload has no header record")
    if len(items) != declared_keys:
        raise SimulationError(
            f"checkpoint declares {declared_keys} keys but carries {len(items)}"
        )
    if not saw_accel:
        raise SimulationError("checkpoint payload missing accelerator record")
    return batch_index, items, accel_state


def _write_atomic(path: str, data: bytes, real_fsync: bool) -> None:
    tmp = path + TMP_SUFFIX
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        if real_fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_checkpoint(
    directory: str,
    tree: AdaptiveRadixTree,
    batch_index: int,
    accel_state: Optional[Dict] = None,
    real_fsync: bool = False,
    crash: Optional[str] = None,
    crash_fraction: float = 0.5,
) -> CheckpointInfo:
    """Write one checkpoint with the two-phase atomic protocol.

    ``crash`` arms a chaos crash point: :data:`CRASH_PAYLOAD` kills the
    writer mid-payload (temp file partially written, never renamed);
    :data:`CRASH_MANIFEST` kills it mid-manifest (a torn manifest JSON
    lands at the final name — the pathological case a hostile filesystem
    can produce, which recovery must also survive).
    """
    os.makedirs(directory, exist_ok=True)
    payload = build_payload(tree, batch_index, accel_state)
    stem = checkpoint_name(batch_index)
    payload_name = stem + PAYLOAD_SUFFIX

    if crash == CRASH_PAYLOAD:
        keep = max(1, int(len(payload) * crash_fraction))
        tmp = os.path.join(directory, payload_name + TMP_SUFFIX)
        with open(tmp, "wb") as handle:  # reprolint: disable=DUR01 -- deliberate torn write: chaos crash point CRASH_PAYLOAD simulates dying mid-payload; the temp name is never renamed into place
            handle.write(payload[:keep])
        raise SimulatedCrash(
            f"crash mid-checkpoint payload ({stem})",
            {"point": CRASH_PAYLOAD, "batch_index": batch_index,
             "bytes_written": keep, "payload_bytes": len(payload)},
        )

    _write_atomic(os.path.join(directory, payload_name), payload, real_fsync)

    manifest = {
        "format": CHECKPOINT_FORMAT,
        "seq": batch_index + 1,
        "batch_index": batch_index,
        "payload": payload_name,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
        "n_keys": len(tree),
        "node_counts": tree.node_counts(),
    }
    manifest_bytes = json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8")
    manifest_path = os.path.join(directory, stem + MANIFEST_SUFFIX)

    if crash == CRASH_MANIFEST:
        keep = max(1, int(len(manifest_bytes) * crash_fraction))
        with open(manifest_path, "wb") as handle:  # reprolint: disable=DUR01 -- deliberate torn write: chaos crash point CRASH_MANIFEST plants a torn manifest at the final name, the hostile-filesystem case recovery must survive
            handle.write(manifest_bytes[:keep])
        raise SimulatedCrash(
            f"crash mid-checkpoint manifest ({stem})",
            {"point": CRASH_MANIFEST, "batch_index": batch_index,
             "bytes_written": keep},
        )

    _write_atomic(manifest_path, manifest_bytes, real_fsync)
    LOG.info(
        "checkpoint %s: %d keys, %d payload bytes", stem, len(tree), len(payload)
    )
    return CheckpointInfo(directory=directory, seq=batch_index + 1, manifest=manifest)


def list_checkpoints(directory: str) -> List[CheckpointInfo]:
    """Discover checkpoints, newest first, by their manifest files.

    A manifest that does not parse as JSON (torn write) is surfaced with
    an empty ``manifest`` dict so recovery can count it as skipped.
    """
    found: List[CheckpointInfo] = []
    if not os.path.isdir(directory):
        return found
    for name in os.listdir(directory):
        if not name.startswith("ckpt-") or not name.endswith(MANIFEST_SUFFIX):
            continue
        try:
            seq = int(name[len("ckpt-") : -len(MANIFEST_SUFFIX)])
        except ValueError:
            continue
        info = CheckpointInfo(directory=directory, seq=seq)
        try:
            with open(os.path.join(directory, name), "rb") as handle:
                info.manifest = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            info.manifest = {}
        found.append(info)
    return sorted(found, key=lambda info: info.seq, reverse=True)


def load_checkpoint(
    info: CheckpointInfo,
) -> Tuple[int, List[Tuple[bytes, object]], Dict]:
    """Verify and decode one checkpoint; raises on any corruption.

    Verification order mirrors trust: the manifest must carry the
    payload pointer and hash, the payload bytes must hash to exactly the
    signed digest, and only then are the frames decoded.
    """
    if not info.manifest:
        raise SimulationError(f"checkpoint seq {info.seq}: unreadable manifest")
    for required in ("payload", "sha256", "batch_index", "n_keys"):
        if required not in info.manifest:
            raise SimulationError(
                f"checkpoint seq {info.seq}: manifest missing {required!r}"
            )
    try:
        with open(info.payload_path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise SimulationError(
            f"checkpoint seq {info.seq}: payload unreadable: {exc}"
        ) from exc
    digest = hashlib.sha256(payload).hexdigest()
    if digest != info.manifest["sha256"]:
        raise SimulationError(
            f"checkpoint seq {info.seq}: payload sha256 mismatch "
            f"({digest[:12]}… vs signed {info.manifest['sha256'][:12]}…)"
        )
    batch_index, items, accel_state = parse_payload(payload)
    if batch_index != info.manifest["batch_index"]:
        raise SimulationError(
            f"checkpoint seq {info.seq}: header batch {batch_index} "
            f"disagrees with manifest {info.manifest['batch_index']}"
        )
    if len(items) != info.manifest["n_keys"]:
        raise SimulationError(
            f"checkpoint seq {info.seq}: {len(items)} items vs manifest "
            f"n_keys {info.manifest['n_keys']}"
        )
    return batch_index, items, accel_state


def restore_tree(items: List[Tuple[bytes, object]]) -> AdaptiveRadixTree:
    """Rebuild the canonical ART from checkpointed items."""
    tree = AdaptiveRadixTree()
    for key, value in items:
        tree.upsert(key, value)
    return tree
