"""Durability subsystem: WAL, crash-consistent checkpoints, recovery.

The batch boundaries of DCART's overlap model are the consistency
points: :class:`DurabilityManager` logs every combined batch to the
write-ahead log *before* SOU dispatch, checkpoints the tree (plus the
accelerator's warm state) every N batches, and
:func:`~repro.durability.recover.recover` rebuilds the committed prefix
after any crash.  The chaos harness's crash loop
(:mod:`repro.harness.resilience`) drives kill points through every step
of the protocol and verifies recovery against a committed-prefix
reference tree.
"""

from repro.durability.checkpoint import (
    CheckpointInfo,
    CRASH_MANIFEST,
    CRASH_PAYLOAD,
    list_checkpoints,
    load_checkpoint,
    restore_tree,
    write_checkpoint,
)
from repro.durability.manager import (
    CRASH_POINTS,
    CRASH_WAL_MID_APPEND,
    CRASH_WAL_PRE_COMMIT,
    CRASH_WAL_TORN_COMMIT,
    DurabilityManager,
    accelerator_state,
)
from repro.durability.recover import RecoveryResult, recover, wal_path
from repro.durability.wal import (
    BeginRecord,
    CommitRecord,
    OpRecord,
    WalScan,
    WriteAheadLog,
    scan_wal,
)

__all__ = [
    "BeginRecord",
    "CheckpointInfo",
    "CommitRecord",
    "CRASH_MANIFEST",
    "CRASH_PAYLOAD",
    "CRASH_POINTS",
    "CRASH_WAL_MID_APPEND",
    "CRASH_WAL_PRE_COMMIT",
    "CRASH_WAL_TORN_COMMIT",
    "DurabilityManager",
    "OpRecord",
    "RecoveryResult",
    "WalScan",
    "WriteAheadLog",
    "accelerator_state",
    "list_checkpoints",
    "load_checkpoint",
    "recover",
    "restore_tree",
    "scan_wal",
    "wal_path",
    "write_checkpoint",
]
