#!/usr/bin/env python
"""An IP-geolocation store on the ART — the paper's IPGEO scenario.

    python examples/ip_geolocation_store.py

Builds an IP→country index (a synthetic GeoLite2 equivalent), serves
point lookups and CIDR-block range scans from the ART, then replays a
skewed concurrent lookup/update stream through every engine of the
evaluation to show where DCART's data-centric model pays off.
"""

import numpy as np

from repro import (
    AdaptiveRadixTree,
    DcartAccelerator,
    PrefixHistogram,
    encode_ipv4,
    make_workload,
)
from repro.engines import ArtRowexEngine, CuArtEngine, DcartCEngine, SmartEngine
from repro.harness.runner import default_engines, run_matrix
from repro.workloads import realworld

N_RECORDS = 8_000
N_OPS = 60_000


def build_store() -> AdaptiveRadixTree:
    """Load the IP->country records into an ART."""
    rng = np.random.default_rng(2026)
    keys = realworld.ipgeo_keys(N_RECORDS, rng)
    countries = realworld.ipgeo_values(keys, rng)
    store = AdaptiveRadixTree()
    for key, country in zip(keys, countries):
        store.insert(key, country)
    return store


def point_and_range_queries(store: AdaptiveRadixTree) -> None:
    print("=" * 64)
    print("Point lookups and CIDR scans")
    print("=" * 64)
    some_ip, country = store.minimum()
    print(f"first record: {'.'.join(map(str, some_ip))} -> {country}")

    # All records in 103.0.0.0/8 (the paper's hot 0x67 block).
    low, high = encode_ipv4("103.0.0.0"), encode_ipv4("103.255.255.255")
    block = list(store.range_scan(low, high))
    print(f"records in 103.0.0.0/8: {len(block)}")
    by_country = {}
    for _, c in block:
        by_country[c] = by_country.get(c, 0) + 1
    print(f"countries in that block: {by_country}")

    print(f"store: {len(store)} records, height {store.height()}, "
          f"{store.memory_footprint() / 1024:.0f} KiB of nodes")
    print()


def concurrent_stream() -> None:
    print("=" * 64)
    print("Concurrent lookup/update stream (50/50), all engines")
    print("=" * 64)
    workload = make_workload("IPGEO", n_keys=N_RECORDS, n_ops=N_OPS, seed=7)
    hist = PrefixHistogram.from_operations(workload.operations)
    prefix, count = hist.hottest
    print(
        f"{workload.summary()}\n"
        f"hottest /8 block: 0x{prefix:02X} with {count} ops "
        f"({100 * hist.share(prefix):.1f} % of the stream)"
    )
    results = run_matrix(default_engines(N_RECORDS), [workload])["IPGEO"]
    dcart = results["DCART"]
    for name in ("ART", "Heart", "SMART", "CuART", "DCART-C", "DCART"):
        r = results[name]
        speedup = r.elapsed_seconds / dcart.elapsed_seconds
        print(f"{r.summary()}   ({speedup:5.1f}x DCART's time)")
    print()
    print(
        "DCART's shortcut table turned "
        f"{dcart.extra['shortcut_hits']} of {workload.n_ops} operations "
        "into direct node accesses."
    )


def main() -> None:
    store = build_store()
    point_and_range_queries(store)
    concurrent_stream()


if __name__ == "__main__":
    main()
