#!/usr/bin/env python
"""Quickstart: the ART as an index, and DCART as its accelerator.

Runs in a few seconds:

    python examples/quickstart.py

Covers the three layers of the library bottom-up — the Adaptive Radix
Tree itself, a workload, and the DCART accelerator model — and prints
what each layer reports.
"""

from repro import (
    AdaptiveRadixTree,
    DcartAccelerator,
    SmartEngine,
    encode_str,
    encode_u64,
    make_workload,
    record_traversal,
)


def demo_tree() -> None:
    """The substrate: a plain Adaptive Radix Tree."""
    print("=" * 64)
    print("1. The Adaptive Radix Tree")
    print("=" * 64)

    tree = AdaptiveRadixTree()
    for word, meaning in [
        ("art", "adaptive radix tree"),
        ("artful", "indexing for main-memory databases"),
        ("radix", "the branching factor"),
        ("trie", "the family it belongs to"),
    ]:
        tree.insert(encode_str(word), meaning)

    print(f"size: {len(tree)} keys, height: {tree.height()} nodes")
    print(f"lookup 'art' -> {tree.search(encode_str('art'))!r}")

    print("range scan a..s:")
    for key, value in tree.range_scan(encode_str("a"), encode_str("s")):
        print(f"  {key[:-1].decode():8s} -> {value}")

    # Every operation is instrumented: this is what the engines price.
    with record_traversal(tree, "read", encode_str("artful")) as trace:
        tree.search(encode_str("artful"))
    print(
        f"traversal of 'artful': {trace.depth} nodes, "
        f"{trace.total_matches()} partial-key matches, "
        f"{trace.bytes_fetched} B fetched / {trace.bytes_used} B used"
    )

    # Integers work too; they become big-endian bytes.
    numbers = AdaptiveRadixTree()
    for i in range(1000):
        numbers.insert(encode_u64(i), i * i)
    print(f"u64 tree: {len(numbers)} keys, node mix {numbers.node_counts()}")
    print()


def demo_workload_and_engines() -> None:
    """A paper workload on the best CPU baseline and on DCART."""
    print("=" * 64)
    print("2. A paper workload: IPGEO (scaled down)")
    print("=" * 64)

    workload = make_workload("IPGEO", n_keys=5_000, n_ops=50_000, seed=1)
    print(workload.summary())

    smart = SmartEngine().run(workload)
    dcart = DcartAccelerator().run(workload)
    print(smart.summary())
    print(dcart.summary())
    speedup = smart.elapsed_seconds / dcart.elapsed_seconds
    saving = smart.energy_joules / dcart.energy_joules
    print(f"DCART vs SMART: {speedup:.1f}x faster, {saving:.1f}x less energy")
    print(
        f"DCART internals: {dcart.extra['shortcut_hits']} shortcut hits, "
        f"{dcart.extra['traversals']} full traversals, "
        f"Tree_buffer hit rate {dcart.extra['tree_buffer_hit_rate']:.2f}"
    )
    print()


def main() -> None:
    demo_tree()
    demo_workload_and_engines()
    print("Next: examples/ip_geolocation_store.py and examples/design_space.py")


if __name__ == "__main__":
    main()
