#!/usr/bin/env python
"""Capacity planning for the Tree_buffer with reuse-distance analysis.

    python examples/capacity_planning.py

How big does DCART's Tree_buffer have to be?  Table I says 4 MB for the
paper's 50 M-key trees; this example derives that kind of number from
first principles for a scaled workload: trace the node accesses an
operation stream makes, compute the reuse-distance profile, and read
the miss-ratio curve — then cross-check against the actual value-aware
buffer at a few capacities, and emit a Markdown report of a full
engine comparison.
"""

from repro import DCARTConfig, DcartAccelerator, make_workload
from repro.analysis import markdown_report
from repro.art import record_traversal
from repro.engines.base import apply_operation
from repro.harness.formatting import format_table
from repro.harness.runner import default_engines, run_matrix
from repro.memsim.tracer import ReuseDistanceTracer

N_KEYS = 6_000
N_OPS = 30_000


def trace_node_accesses(workload) -> ReuseDistanceTracer:
    """Replay the op stream and trace every node fetch."""
    from repro.engines import SmartEngine

    tree = SmartEngine().build_tree(workload)
    tracer = ReuseDistanceTracer()
    for op in workload.operations:
        record = apply_operation(tree, op)
        for touch in record.touches:
            tracer.access(touch.address, touch.fetch_bytes)
    return tracer


def main() -> None:
    workload = make_workload("IPGEO", n_keys=N_KEYS, n_ops=N_OPS, seed=13)
    print(workload.summary(), "\n")

    tracer = trace_node_accesses(workload)
    print(
        f"trace: {tracer.n_accesses} line accesses over "
        f"{tracer.n_distinct_lines} distinct lines"
    )
    capacities = [64, 256, 1024, 4096, 16384]
    curve = tracer.miss_ratio_curve(capacities)
    rows = [
        [lines, lines * 64 // 1024, 100 * (1 - miss), 100 * miss]
        for lines, miss in curve.items()
    ]
    print(format_table(
        ["capacity_lines", "KiB", "hit_%", "miss_%"], rows,
        title="Miss-ratio curve (fully-associative LRU bound)",
    ))
    ws = tracer.working_set_lines(0.95)
    print(f"\n95% working set: {ws} lines = {ws * 64 / 1024:.0f} KiB\n")

    # Cross-check: the actual value-aware Tree_buffer at those capacities.
    rows = []
    for kib in (4, 16, 64, 256):
        config = DCARTConfig(
            batch_size=8192,
            tree_buffer_bytes=kib * 1024,
            shortcut_buffer_bytes=8 * 1024,
        )
        result = DcartAccelerator(config=config).run(workload)
        rows.append([
            kib,
            result.extra["tree_buffer_hit_rate"],
            result.elapsed_seconds * 1e3,
        ])
    print(format_table(
        ["tree_buffer_KiB", "hit_rate", "ms"], rows,
        title="Value-aware Tree_buffer, measured",
    ))

    # A full comparison, rendered as Markdown for a report/PR.
    matrix = run_matrix(
        default_engines(N_KEYS, include=["ART", "SMART", "CuART", "DCART"]),
        [workload],
    )
    print("\n" + markdown_report(
        matrix,
        title=f"IPGEO @ {N_KEYS} keys / {N_OPS} ops",
        engine_order=["ART", "SMART", "CuART", "DCART"],
    ))


if __name__ == "__main__":
    main()
