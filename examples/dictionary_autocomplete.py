#!/usr/bin/env python
"""A dictionary/autocomplete service on the ART — the DICT scenario.

    python examples/dictionary_autocomplete.py

Tree indexes beat hash indexes exactly here (paper §V): prefix queries.
This example loads an English-like word list, serves autocomplete via
range scans, mutates the dictionary concurrently, and shows the
operation-level statistics the paper's motivation study is built on.
"""

import numpy as np

from repro import AdaptiveRadixTree, encode_str, make_workload
from repro.engines import SmartEngine
from repro.core import DcartAccelerator
from repro.workloads import realworld

N_WORDS = 10_000


def autocomplete(tree: AdaptiveRadixTree, prefix: str, limit: int = 8):
    """All words starting with ``prefix``, lexicographically."""
    low = encode_str(prefix)[:-1]  # drop the terminator: open interval
    high = low + b"\xff"
    out = []
    for key, _ in tree.range_scan(low, high):
        out.append(key[:-1].decode())
        if len(out) >= limit:
            break
    return out


def main() -> None:
    rng = np.random.default_rng(5)
    words = realworld.dict_keys(N_WORDS, rng)
    tree = AdaptiveRadixTree()
    for i, word in enumerate(words):
        tree.insert(word, i)

    print(f"dictionary: {len(tree)} words, height {tree.height()}")
    print(f"node mix: {tree.node_counts()}")

    for raw in (words[10], words[100], words[1000]):
        prefix = raw[:-1].decode()[:3]
        matches = autocomplete(tree, prefix)
        print(f"autocomplete({prefix!r}): {matches}")

    # The traversal economics behind the paper's Fig. 2:
    tree.stats.reset()
    probe_words = [words[i] for i in range(0, N_WORDS, 97)]
    for word in probe_words:
        tree.search(word)
    stats = tree.stats
    print(
        f"\n{len(probe_words)} point lookups: "
        f"{stats.nodes_visited} node visits, "
        f"{stats.partial_key_matches} child lookups, "
        f"{stats.prefix_bytes_compared} prefix bytes compared, "
        f"cacheline utilisation {100 * stats.cacheline_utilisation:.1f} % "
        f"(paper Fig. 2c: ~20 %)"
    )

    # And the headline comparison on the DICT workload:
    workload = make_workload("DICT", n_keys=N_WORDS, n_ops=80_000, seed=5)
    smart = SmartEngine().run(workload)
    dcart = DcartAccelerator().run(workload)
    print(f"\n{workload.summary()}")
    print(smart.summary())
    print(dcart.summary())
    print(
        f"DCART vs SMART on DICT: "
        f"{smart.elapsed_seconds / dcart.elapsed_seconds:.1f}x faster, "
        f"{smart.energy_joules / dcart.energy_joules:.1f}x less energy"
    )


if __name__ == "__main__":
    main()
