#!/usr/bin/env python
"""DCART design-space exploration.

    python examples/design_space.py

Sweeps the accelerator's architectural knobs — SOU count, Tree_buffer
capacity, batch size — and the ablation switches, on one workload, and
prints a table per sweep.  This is the kind of study an RTL team would
run before committing the Table I configuration.
"""

from repro import DCARTConfig, DcartAccelerator, make_workload
from repro.harness.formatting import format_table

N_KEYS = 8_000
N_OPS = 60_000
TREE_BUFFER = 64 * 1024  # scaled to the workload like the harness does
SHORTCUT_BUFFER = 8 * 1024


def run(config: DCARTConfig, workload):
    return DcartAccelerator(config=config).run(workload)


def sweep_sous(workload) -> str:
    rows = []
    for n_sous in (1, 2, 4, 8, 16):
        config = DCARTConfig(
            n_sous=n_sous,
            n_buckets=16,
            batch_size=8192,
            tree_buffer_bytes=TREE_BUFFER,
            shortcut_buffer_bytes=SHORTCUT_BUFFER,
        )
        result = run(config, workload)
        rows.append(
            [n_sous, result.elapsed_seconds * 1e3, result.throughput_mops]
        )
    return format_table(
        ["n_sous", "ms", "Mops/s"], rows, title="SOU count sweep (16 buckets)"
    )


def sweep_tree_buffer(workload) -> str:
    rows = []
    for kib in (4, 16, 64, 256, 1024):
        config = DCARTConfig(
            batch_size=8192,
            tree_buffer_bytes=kib * 1024,
            shortcut_buffer_bytes=SHORTCUT_BUFFER,
        )
        result = run(config, workload)
        rows.append(
            [
                kib,
                result.elapsed_seconds * 1e3,
                result.extra["tree_buffer_hit_rate"],
                result.extra["offchip_lines"],
            ]
        )
    return format_table(
        ["tree_buffer_KiB", "ms", "hit_rate", "offchip_lines"],
        rows,
        title="Tree_buffer capacity sweep",
    )


def sweep_batch_size(workload) -> str:
    rows = []
    for batch in (1024, 4096, 16384, 65536):
        config = DCARTConfig(
            batch_size=batch,
            tree_buffer_bytes=TREE_BUFFER,
            shortcut_buffer_bytes=SHORTCUT_BUFFER,
        )
        result = run(config, workload)
        rows.append(
            [
                batch,
                result.elapsed_seconds * 1e3,
                result.extra["overlap_efficiency"],
                result.p99_latency_us,
            ]
        )
    return format_table(
        ["batch_size", "ms", "overlap_eff", "p99_us"],
        rows,
        title="Batch size sweep (PCU/SOU overlap vs latency)",
    )


def ablations(workload) -> str:
    variants = {
        "full DCART": {},
        "no shortcuts": {"enable_shortcuts": False},
        "no combining": {"enable_combining": False},
        "no overlap": {"enable_overlap": False},
        "LRU tree buffer": {"value_aware_tree_buffer": False},
    }
    rows = []
    for label, overrides in variants.items():
        config = DCARTConfig(
            batch_size=8192,
            tree_buffer_bytes=TREE_BUFFER,
            shortcut_buffer_bytes=SHORTCUT_BUFFER,
            **overrides,
        )
        result = run(config, workload)
        rows.append(
            [
                label,
                result.elapsed_seconds * 1e3,
                result.partial_key_matches,
                result.lock_contentions,
            ]
        )
    return format_table(
        ["variant", "ms", "matches", "contentions"],
        rows,
        title="Ablations (paper SIII design choices)",
    )


def main() -> None:
    workload = make_workload("IPGEO", n_keys=N_KEYS, n_ops=N_OPS, seed=11)
    print(workload.summary(), "\n")
    for table in (
        sweep_sous(workload),
        sweep_tree_buffer(workload),
        sweep_batch_size(workload),
        ablations(workload),
    ):
        print(table)
        print()


if __name__ == "__main__":
    main()
